// English-like prose generator.
//
// Real text drives the paper's observation that character data is
// heavily skewed ("the character e in English"): a small alphabet,
// spaces every ~5 bytes, newlines every ~70, and strong phrase-level
// repetition within a document (locality). We build text from a
// frequency-weighted common-word pool, with sentence/paragraph
// structure and occasional verbatim repetition of earlier sentences —
// the same document-level self-similarity that produces congruent
// cells in real files.
#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "fsgen/generator.hpp"

namespace cksum::fsgen {

namespace {

struct WeightedWord {
  std::string_view word;
  double weight;
};

// Common English words, roughly Zipf-weighted.
constexpr WeightedWord kWords[] = {
    {"the", 50}, {"of", 28}, {"and", 26}, {"to", 25}, {"a", 22},
    {"in", 20}, {"is", 12}, {"it", 11}, {"you", 10}, {"that", 10},
    {"he", 9}, {"was", 9}, {"for", 9}, {"on", 8}, {"are", 8},
    {"with", 7}, {"as", 7}, {"his", 6}, {"they", 6}, {"be", 6},
    {"at", 6}, {"one", 5}, {"have", 5}, {"this", 5}, {"from", 5},
    {"or", 4.5}, {"had", 4.5}, {"by", 4.5}, {"not", 4.4}, {"word", 2},
    {"but", 4}, {"what", 3.5}, {"some", 3.2}, {"we", 3.6}, {"can", 3.2},
    {"out", 3.1}, {"other", 3.1}, {"were", 3}, {"all", 3}, {"there", 2.9},
    {"when", 2.8}, {"up", 2.8}, {"use", 2.6}, {"your", 2.6}, {"how", 2.5},
    {"said", 2.5}, {"an", 2.5}, {"each", 2.4}, {"she", 2.4}, {"which", 2.3},
    {"do", 2.3}, {"their", 2.2}, {"time", 2.2}, {"if", 2.2}, {"will", 2.1},
    {"way", 2}, {"about", 2}, {"many", 1.9}, {"then", 1.9}, {"them", 1.9},
    {"would", 1.8}, {"write", 1.8}, {"like", 1.8}, {"so", 1.8}, {"these", 1.7},
    {"her", 1.7}, {"long", 1.7}, {"make", 1.6}, {"thing", 1.6}, {"see", 1.6},
    {"him", 1.6}, {"two", 1.5}, {"has", 1.5}, {"look", 1.5}, {"more", 1.5},
    {"day", 1.4}, {"could", 1.4}, {"go", 1.4}, {"come", 1.4}, {"did", 1.4},
    {"number", 1.3}, {"sound", 1.3}, {"no", 1.3}, {"most", 1.3}, {"people", 1.3},
    {"my", 1.3}, {"over", 1.3}, {"know", 1.2}, {"water", 1.2}, {"than", 1.2},
    {"call", 1.2}, {"first", 1.2}, {"who", 1.2}, {"may", 1.1}, {"down", 1.1},
    {"side", 1.1}, {"been", 1.1}, {"now", 1.1}, {"find", 1.1}, {"any", 1},
    {"new", 1}, {"work", 1}, {"part", 1}, {"take", 1}, {"get", 1},
    {"place", 1}, {"made", 0.9}, {"live", 0.9}, {"where", 0.9}, {"after", 0.9},
    {"back", 0.9}, {"little", 0.9}, {"only", 0.9}, {"round", 0.8}, {"man", 0.8},
    {"year", 0.8}, {"came", 0.8}, {"show", 0.8}, {"every", 0.8}, {"good", 0.8},
    {"me", 0.8}, {"give", 0.8}, {"our", 0.8}, {"under", 0.7}, {"name", 0.7},
    {"very", 0.7}, {"through", 0.7}, {"just", 0.7}, {"form", 0.7},
    {"sentence", 0.7}, {"great", 0.7}, {"think", 0.7}, {"say", 0.7},
    {"help", 0.6}, {"low", 0.6}, {"line", 0.6}, {"differ", 0.6}, {"turn", 0.6},
    {"cause", 0.6}, {"much", 0.6}, {"mean", 0.6}, {"before", 0.6}, {"move", 0.6},
    {"right", 0.6}, {"boy", 0.5}, {"old", 0.5}, {"too", 0.5}, {"same", 0.5},
    {"tell", 0.5}, {"does", 0.5}, {"set", 0.5}, {"three", 0.5}, {"want", 0.5},
    {"air", 0.5}, {"well", 0.5}, {"also", 0.5}, {"play", 0.5}, {"small", 0.5},
    {"end", 0.5}, {"put", 0.5}, {"home", 0.5}, {"read", 0.5}, {"hand", 0.5},
    {"port", 0.4}, {"large", 0.4}, {"spell", 0.4}, {"add", 0.4}, {"even", 0.4},
    {"land", 0.4}, {"here", 0.4}, {"must", 0.4}, {"big", 0.4}, {"high", 0.4},
    {"such", 0.4}, {"follow", 0.4}, {"act", 0.4}, {"why", 0.4}, {"ask", 0.4},
    {"men", 0.4}, {"change", 0.4}, {"went", 0.4}, {"light", 0.4}, {"kind", 0.4},
    {"off", 0.4}, {"need", 0.4}, {"house", 0.4}, {"picture", 0.4}, {"try", 0.4},
    {"us", 0.4}, {"again", 0.4}, {"animal", 0.4}, {"point", 0.4},
    {"mother", 0.4}, {"world", 0.4}, {"near", 0.4}, {"build", 0.4},
    {"self", 0.4}, {"earth", 0.4}, {"father", 0.4}, {"head", 0.3},
    {"stand", 0.3}, {"own", 0.3}, {"page", 0.3}, {"should", 0.3},
    {"country", 0.3}, {"found", 0.3}, {"answer", 0.3}, {"school", 0.3},
    {"grow", 0.3}, {"study", 0.3}, {"still", 0.3}, {"learn", 0.3},
    {"plant", 0.3}, {"cover", 0.3}, {"food", 0.3}, {"sun", 0.3}, {"four", 0.3},
    {"between", 0.3}, {"state", 0.3}, {"keep", 0.3}, {"eye", 0.3},
    {"never", 0.3}, {"last", 0.3}, {"let", 0.3}, {"thought", 0.3},
    {"city", 0.3}, {"tree", 0.3}, {"cross", 0.3}, {"farm", 0.3}, {"hard", 0.3},
    {"start", 0.3}, {"might", 0.3}, {"story", 0.3}, {"saw", 0.3}, {"far", 0.3},
    {"sea", 0.3}, {"draw", 0.3}, {"left", 0.3}, {"late", 0.3}, {"run", 0.3},
    {"while", 0.3}, {"press", 0.3}, {"close", 0.3}, {"night", 0.3},
    {"real", 0.3}, {"life", 0.3}, {"few", 0.3}, {"north", 0.2}, {"open", 0.2},
    {"seem", 0.2}, {"together", 0.2}, {"next", 0.2}, {"white", 0.2},
    {"children", 0.2}, {"begin", 0.2}, {"got", 0.2}, {"walk", 0.2},
    {"example", 0.2}, {"ease", 0.2}, {"paper", 0.2}, {"group", 0.2},
    {"always", 0.2}, {"music", 0.2}, {"those", 0.2}, {"both", 0.2},
    {"mark", 0.2}, {"often", 0.2}, {"letter", 0.2}, {"until", 0.2},
    {"mile", 0.2}, {"river", 0.2}, {"car", 0.2}, {"feet", 0.2}, {"care", 0.2},
    {"second", 0.2}, {"book", 0.2}, {"carry", 0.2}, {"took", 0.2},
    {"science", 0.2}, {"eat", 0.2}, {"room", 0.2}, {"friend", 0.2},
    {"began", 0.2}, {"idea", 0.2}, {"fish", 0.2}, {"mountain", 0.2},
    {"stop", 0.2}, {"once", 0.2}, {"base", 0.2}, {"hear", 0.2}, {"horse", 0.2},
    {"cut", 0.2}, {"sure", 0.2}, {"watch", 0.2}, {"color", 0.2}, {"face", 0.2},
    {"wood", 0.2}, {"main", 0.2}, {"enough", 0.2}, {"plain", 0.2},
    {"girl", 0.2}, {"usual", 0.2}, {"young", 0.2}, {"ready", 0.2},
    {"above", 0.2}, {"ever", 0.2}, {"red", 0.2}, {"list", 0.2}, {"though", 0.2},
    {"feel", 0.2}, {"talk", 0.2}, {"bird", 0.2}, {"soon", 0.2}, {"body", 0.2},
    {"dog", 0.2}, {"family", 0.2}, {"direct", 0.2}, {"pose", 0.2},
    {"leave", 0.2}, {"song", 0.2}, {"measure", 0.2}, {"door", 0.2},
    {"product", 0.2}, {"black", 0.2}, {"short", 0.2}, {"numeral", 0.2},
    {"class", 0.2}, {"wind", 0.2}, {"question", 0.2}, {"happen", 0.2},
    {"complete", 0.2}, {"ship", 0.2}, {"area", 0.2}, {"half", 0.2},
    {"rock", 0.2}, {"order", 0.2}, {"fire", 0.2}, {"south", 0.2},
    {"problem", 0.2}, {"piece", 0.2}, {"told", 0.2}, {"knew", 0.2},
    {"pass", 0.2}, {"since", 0.2}, {"top", 0.2}, {"whole", 0.2}, {"king", 0.2},
    {"space", 0.2}, {"heard", 0.2}, {"best", 0.2}, {"hour", 0.2},
    {"better", 0.2}, {"true", 0.2}, {"during", 0.2}, {"hundred", 0.2},
    {"five", 0.2}, {"remember", 0.2}, {"step", 0.2}, {"early", 0.2},
    {"hold", 0.2}, {"west", 0.2}, {"ground", 0.2}, {"interest", 0.2},
    {"reach", 0.2}, {"fast", 0.2}, {"verb", 0.2}, {"sing", 0.2},
    {"listen", 0.2}, {"six", 0.2}, {"table", 0.2}, {"travel", 0.2},
    {"less", 0.2}, {"morning", 0.2}, {"ten", 0.2}, {"simple", 0.2},
    {"several", 0.2}, {"vowel", 0.2}, {"toward", 0.2}, {"war", 0.2},
    {"lay", 0.2}, {"against", 0.2}, {"pattern", 0.2}, {"slow", 0.2},
    {"center", 0.2}, {"love", 0.2}, {"person", 0.2}, {"money", 0.2},
    {"serve", 0.2}, {"appear", 0.2}, {"road", 0.2}, {"map", 0.2},
    {"rain", 0.2}, {"rule", 0.2}, {"govern", 0.2}, {"pull", 0.2},
    {"cold", 0.2}, {"notice", 0.2}, {"voice", 0.2}, {"unit", 0.2},
    {"power", 0.2}, {"town", 0.2}, {"fine", 0.2}, {"certain", 0.2},
    {"fly", 0.2}, {"fall", 0.2}, {"lead", 0.2}, {"cry", 0.2}, {"dark", 0.2},
    {"machine", 0.2}, {"note", 0.2}, {"wait", 0.2}, {"plan", 0.2},
    {"figure", 0.2}, {"star", 0.2}, {"box", 0.2}, {"noun", 0.2},
    {"field", 0.2}, {"rest", 0.2}, {"correct", 0.2}, {"able", 0.2},
    {"pound", 0.2}, {"done", 0.2}, {"beauty", 0.2}, {"drive", 0.2},
    {"stood", 0.2}, {"contain", 0.2}, {"front", 0.2}, {"teach", 0.2},
    {"week", 0.2}, {"final", 0.2}, {"gave", 0.2}, {"green", 0.2},
    {"oh", 0.2}, {"quick", 0.2}, {"develop", 0.2}, {"ocean", 0.2},
    {"warm", 0.2}, {"free", 0.2}, {"minute", 0.2}, {"strong", 0.2},
    {"special", 0.2}, {"mind", 0.2}, {"behind", 0.2}, {"clear", 0.2},
    {"tail", 0.2}, {"produce", 0.2}, {"fact", 0.2}, {"street", 0.2},
    {"inch", 0.2}, {"multiply", 0.2}, {"nothing", 0.2}, {"course", 0.2},
    {"stay", 0.2}, {"wheel", 0.2}, {"full", 0.2}, {"force", 0.2},
    {"blue", 0.2}, {"object", 0.2}, {"decide", 0.2}, {"surface", 0.2},
    {"deep", 0.2}, {"moon", 0.2}, {"island", 0.2}, {"foot", 0.2},
    {"system", 0.2}, {"busy", 0.2}, {"test", 0.2}, {"record", 0.2},
    {"boat", 0.2}, {"common", 0.2}, {"gold", 0.2}, {"possible", 0.2},
    {"plane", 0.2}, {"stead", 0.2}, {"dry", 0.2}, {"wonder", 0.2},
    {"laugh", 0.2}, {"thousand", 0.2}, {"ago", 0.2}, {"ran", 0.2},
    {"check", 0.2}, {"game", 0.2}, {"shape", 0.2}, {"equate", 0.2},
    {"hot", 0.2}, {"miss", 0.2}, {"brought", 0.2}, {"heat", 0.2},
    {"snow", 0.2}, {"tire", 0.2}, {"bring", 0.2}, {"yes", 0.2},
    {"distant", 0.2}, {"fill", 0.2}, {"east", 0.2}, {"paint", 0.2},
    {"language", 0.2}, {"among", 0.2},
};

std::vector<double> word_weights() {
  std::vector<double> w;
  w.reserve(std::size(kWords));
  for (const auto& entry : kWords) w.push_back(entry.weight);
  return w;
}

}  // namespace

util::Bytes generate_text(util::Rng& rng, std::size_t approx_size) {
  static const std::vector<double> weights = word_weights();

  util::Bytes out;
  out.reserve(approx_size + 128);

  // Remember recent sentences for verbatim repetition (quotes,
  // boilerplate, repeated headings — a strong locality source).
  std::vector<std::string> recent;
  std::size_t line_len = 0;

  auto emit = [&](std::string_view s) {
    for (char c : s) {
      out.push_back(static_cast<std::uint8_t>(c));
      ++line_len;
    }
  };
  auto newline = [&] {
    out.push_back('\n');
    line_len = 0;
  };

  while (out.size() < approx_size) {
    // Paragraph of 2..7 sentences.
    const std::size_t sentences = static_cast<std::size_t>(rng.between(2, 7));
    for (std::size_t s = 0; s < sentences && out.size() < approx_size; ++s) {
      std::string sentence;
      if (!recent.empty() && rng.chance(0.08)) {
        // Repeat an earlier sentence verbatim.
        sentence = recent[rng.below(recent.size())];
      } else {
        const std::size_t words = static_cast<std::size_t>(rng.between(4, 14));
        for (std::size_t w = 0; w < words; ++w) {
          const auto& entry = kWords[rng.pick_weighted(weights)];
          std::string word(entry.word);
          if (w == 0) word[0] = static_cast<char>(word[0] - 'a' + 'A');
          if (!sentence.empty()) sentence += ' ';
          sentence += word;
          if (w + 2 < words && rng.chance(0.07)) sentence += ',';
        }
        sentence += rng.chance(0.1) ? '?' : '.';
        if (recent.size() < 32) {
          recent.push_back(sentence);
        } else {
          recent[rng.below(recent.size())] = sentence;
        }
      }
      // Emit word by word, wrapping at ~70 columns like formatted
      // prose.
      std::size_t wpos = 0;
      while (wpos < sentence.size()) {
        std::size_t wend = sentence.find(' ', wpos);
        if (wend == std::string::npos) wend = sentence.size();
        const std::size_t wlen = wend - wpos;
        if (line_len > 0 && line_len + wlen + 1 > 70) {
          newline();
        } else if (line_len > 0) {
          emit(" ");
        }
        emit(std::string_view(sentence).substr(wpos, wlen));
        wpos = wend + 1;
      }
    }
    newline();
    newline();
  }
  return out;
}

}  // namespace cksum::fsgen
