#include "net/flow.hpp"

#include <stdexcept>

namespace cksum::net {

std::vector<Packet> segment_file(const FlowConfig& cfg, util::ByteView file) {
  if (cfg.segment_size == 0)
    throw std::invalid_argument("segment_file: segment_size must be > 0");
  std::vector<Packet> out;
  out.reserve(file.size() / cfg.segment_size + 1);
  std::uint32_t seq = cfg.initial_seq;
  std::uint16_t id = cfg.initial_ip_id;
  std::size_t off = 0;
  while (off < file.size()) {
    const std::size_t len = std::min(cfg.segment_size, file.size() - off);
    out.push_back(
        build_packet(cfg.packet, seq, id, file.subspan(off, len)));
    seq += static_cast<std::uint32_t>(len);
    ++id;
    off += len;
  }
  return out;
}

}  // namespace cksum::net
