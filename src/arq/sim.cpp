#include "arq/sim.hpp"

#include <algorithm>
#include <queue>

#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace cksum::arq {

namespace {

struct ArqMetrics {
  obs::Counter runs, data_sent, retransmits, timeouts, fast_retransmits,
      dup_acks, acks_sent, data_check_rejects, ack_check_rejects, gave_up,
      delivered_ok, residual_undetected, residual_lost, skipped,
      payload_bytes_ok;
};

const ArqMetrics& amx() {
  static const ArqMetrics m = [] {
    obs::Registry& r = obs::Registry::global();
    ArqMetrics v;
    v.runs = r.counter("arq.runs");
    v.data_sent = r.counter("arq.data_sent");
    v.retransmits = r.counter("arq.retransmits");
    v.timeouts = r.counter("arq.timeouts");
    v.fast_retransmits = r.counter("arq.fast_retransmits");
    v.dup_acks = r.counter("arq.dup_acks");
    v.acks_sent = r.counter("arq.acks_sent");
    v.data_check_rejects = r.counter("arq.data_check_rejects");
    v.ack_check_rejects = r.counter("arq.ack_check_rejects");
    v.gave_up = r.counter("arq.gave_up");
    v.delivered_ok = r.counter("arq.delivered_ok");
    v.residual_undetected = r.counter("arq.residual_undetected");
    v.residual_lost = r.counter("arq.residual_lost");
    v.skipped = r.counter("arq.skipped");
    v.payload_bytes_ok = r.counter("arq.payload_bytes_ok");
    return v;
  }();
  return m;
}

void flush_metrics(const SimResult& r) {
  const ArqMetrics& m = amx();
  m.runs.add(1);
  m.data_sent.add(r.sender.data_sent);
  m.retransmits.add(r.sender.retransmits);
  m.timeouts.add(r.sender.timeouts);
  m.fast_retransmits.add(r.sender.fast_retransmits);
  m.dup_acks.add(r.sender.dup_acks);
  m.acks_sent.add(r.receiver.acks_sent);
  m.data_check_rejects.add(r.receiver.check_rejects);
  m.ack_check_rejects.add(r.sender.ack_rejects);
  m.gave_up.add(r.gave_up);
  m.delivered_ok.add(r.delivered_ok);
  m.residual_undetected.add(r.residual_undetected);
  m.residual_lost.add(r.residual_lost);
  m.skipped.add(r.receiver.skipped);
  m.payload_bytes_ok.add(r.payload_bytes_ok);
}

constexpr std::uint64_t kNever = ~std::uint64_t{0};

/// One in-flight link delivery. Ordered by (time, id): insertion order
/// breaks ties, so the run is deterministic.
struct Event {
  std::uint64_t time;
  std::uint64_t id;
  bool to_receiver;
  util::Bytes bytes;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return a.time != b.time ? a.time > b.time : a.id > b.id;
  }
};

}  // namespace

void register_arq_metrics() { (void)amx(); }

SimResult run_sim(const SimConfig& cfg,
                  const std::vector<util::Bytes>& payloads) {
  SimResult res;
  res.payloads_offered = payloads.size();
  for (const util::Bytes& p : payloads) res.payload_bytes_offered += p.size();

  // Independent deterministic streams for jitter and each direction.
  const util::Rng root(cfg.seed);
  ArqConfig acfg = cfg.arq;
  acfg.jitter_seed = root.child(0).next();
  faults::LinkChannel data_link(cfg.data_link, root.child(1).next());
  faults::LinkChannel ack_link(cfg.ack_link, root.child(2).next());

  Sender sender(acfg, payloads);
  Receiver receiver(acfg);

  // Every payload is transmitted at most 2 + retry_budget times
  // (first send, budgeted retransmissions, one fast retransmit whose
  // retry also counts against the budget); each transmission yields at
  // most two deliveries and each delivery at most one two-delivery
  // ACK. The cap is an order of magnitude above that.
  const std::uint64_t cap =
      cfg.event_cap != 0
          ? cfg.event_cap
          : 4096 + res.payloads_offered *
                       (static_cast<std::uint64_t>(acfg.retry_budget) + 2) * 64;

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue;
  std::uint64_t next_id = 0;
  std::uint64_t now = 0;

  const auto schedule = [&](std::uint64_t t, bool to_receiver,
                            util::Bytes bytes) {
    queue.push(Event{t, next_id++, to_receiver, std::move(bytes)});
  };
  const auto pump_sender = [&] {
    for (util::Bytes& wire : sender.poll(now))
      for (faults::LinkDelivery& d : data_link.transmit(wire))
        schedule(now + cfg.link_delay + d.extra_delay, true,
                 std::move(d.bytes));
  };

  // Oracle bookkeeping: reconstruct each delivery's absolute payload
  // index from its u16 sequence (deliveries are seq-monotonic, so the
  // minimal forward step decodes it) and compare bytes.
  std::vector<std::uint8_t> delivered_flag(payloads.size(), 0);
  std::uint64_t abs_next = 0;
  std::size_t scored = 0;
  const auto score_deliveries = [&] {
    const auto& ds = receiver.deliveries();
    for (; scored < ds.size(); ++scored) {
      const Receiver::Delivery& d = ds[scored];
      const std::uint64_t step = static_cast<std::uint16_t>(
          d.seq - static_cast<std::uint16_t>(abs_next));
      const std::uint64_t abs = abs_next + step;
      abs_next = abs + 1;
      if (abs >= payloads.size() || delivered_flag[abs] != 0) {
        // A sequence the sender never offered (or offered once and we
        // somehow delivered twice): only a corrupted field that beat
        // the checksum can get here.
        ++res.residual_undetected;
        continue;
      }
      delivered_flag[abs] = 1;
      if (d.payload == payloads[abs]) {
        ++res.delivered_ok;
        res.payload_bytes_ok += d.payload.size();
        const std::uint64_t t0 = sender.first_sent()[abs];
        const std::uint64_t lat = t0 == kNever ? 0 : now - t0;
        res.latency_sum += lat;
        res.latency_max = std::max(res.latency_max, lat);
      } else {
        ++res.residual_undetected;
      }
    }
  };

  bool capped = false;
  // The iteration guard exists so an endpoint bug that stops making
  // progress (a timer poll() never clears, say) surfaces as a reported
  // termination failure rather than a hang.
  const std::uint64_t iter_cap = 4 * cap + 4096;
  for (std::uint64_t iter = 0;; ++iter) {
    if (iter > iter_cap) {
      capped = true;
      break;
    }
    pump_sender();
    if (sender.done() && queue.empty()) break;
    const std::uint64_t t_event = queue.empty() ? kNever : queue.top().time;
    const std::uint64_t t_timer = sender.next_deadline();
    const std::uint64_t next = std::min(t_event, t_timer);
    if (next == kNever) {
      res.violation = "stalled: not done, but no event or timer pending";
      break;
    }
    now = std::max(now, next);
    while (!queue.empty() && queue.top().time <= now) {
      Event ev = queue.top();
      queue.pop();
      if (++res.events > cap) {
        capped = true;
        break;
      }
      if (ev.to_receiver) {
        for (util::Bytes& a : receiver.on_frame(ev.bytes))
          for (faults::LinkDelivery& d : ack_link.transmit(a))
            schedule(now + cfg.link_delay + d.extra_delay, false,
                     std::move(d.bytes));
        score_deliveries();
      } else {
        sender.on_frame(ev.bytes);
      }
    }
    if (capped) break;
  }

  // Teardown: the transfer is over, so hand the receiver the sender's
  // final base out of band (the virtual equivalent of a reliable
  // close). This releases SR frames still buffered behind a hole whose
  // base frame was abandoned on the sender's final transmission.
  if (!capped && sender.done()) {
    receiver.finish(static_cast<std::uint16_t>(payloads.size()));
    score_deliveries();
  }

  res.ticks = now;
  res.terminated = !capped;
  res.sender = sender.stats();
  res.receiver = receiver.stats();
  res.data_link = data_link.stats();
  res.ack_link = ack_link.stats();
  res.gave_up = res.sender.gave_up;

  // Residual loss: offered but neither delivered nor abandoned — the
  // trace of an undetected ACK/base corruption (the sender believes a
  // frame arrived that never did).
  std::vector<std::uint8_t> abandoned_flag(payloads.size(), 0);
  for (const std::size_t i : sender.abandoned()) abandoned_flag[i] = 1;
  for (std::size_t i = 0; i < payloads.size(); ++i)
    if (delivered_flag[i] == 0 && abandoned_flag[i] == 0) ++res.residual_lost;

  // Internal accounting identities (docs/ARQ.md, failure matrix). Any
  // mismatch is a simulator/endpoint bug, not a link behaviour.
  if (res.violation.empty() && res.terminated) {
    const ReceiverStats& r = res.receiver;
    if (r.deliveries_seen != r.malformed + r.check_rejects + r.duplicates +
                                 r.out_of_window + r.discarded + r.accepted +
                                 r.buffered)
      res.violation = "receiver outcome counters do not sum to deliveries";
    else if (r.deliveries_seen != res.data_link.deliveries)
      res.violation = "data-link deliveries not all examined by the receiver";
    else if (res.sender.acks_received + res.sender.ack_rejects +
                 res.sender.ack_malformed !=
             res.ack_link.deliveries)
      res.violation = "ack-link deliveries not all examined by the sender";
  }

  flush_metrics(res);
  return res;
}

}  // namespace cksum::arq
