#include "fsgen/generator.hpp"

#include <stdexcept>

namespace cksum::fsgen {

util::Bytes generate_file(FileKind kind, std::uint64_t seed,
                          std::size_t approx_size) {
  util::Rng rng(seed);
  switch (kind) {
    case FileKind::kText: return generate_text(rng, approx_size);
    case FileKind::kCSource: return generate_c_source(rng, approx_size);
    case FileKind::kExecutable: return generate_executable(rng, approx_size);
    case FileKind::kGmonProfile: return generate_gmon_profile(rng, approx_size);
    case FileKind::kPbmImage: return generate_pbm_image(rng, approx_size);
    case FileKind::kHexPostscript:
      return generate_hex_postscript(rng, approx_size);
    case FileKind::kBinhex: return generate_binhex(rng, approx_size);
    case FileKind::kWordProcessor:
      return generate_word_processor(rng, approx_size);
    case FileKind::kRandom: return generate_random(rng, approx_size);
    case FileKind::kTarArchive: return generate_tar_archive(rng, approx_size);
    case FileKind::kMailSpool: return generate_mail_spool(rng, approx_size);
  }
  throw std::invalid_argument("generate_file: unknown kind");
}

}  // namespace cksum::fsgen
