// ARQ link-frame codec with a per-frame checksum choice.
//
// The paper measures how often each checksum misses a corrupted
// *packet*; the ARQ tier asks what that miss rate becomes once a link
// retransmits. Every retry re-exposes a frame to the error process,
// so the frame integrity check is the only thing standing between a
// corrupted retransmission and an undetected delivery — and it is
// chosen per frame from the same algorithm set the paper studies
// (CRC-32, the Internet checksum, Fletcher), computed through the
// kernel registry like every other hot path.
//
// Wire layout (all integers little-endian, like the dist frames —
// this is a new protocol with no network-order legacy):
//
//   u8 type | u8 alg | u16 seq | u16 aux | u16 payload_len |
//   payload bytes | u32 check
//
// For DATA frames `aux` carries the sender's current window base: the
// receiver may skip ahead to it when the sender has abandoned frames
// (docs/ARQ.md, "graceful degradation"). For ACK frames `seq` is the
// receiver's cumulative next-expected sequence and `aux` is the
// selectively-acknowledged sequence (kNoSelectiveAck when none —
// stop-and-wait and go-back-N never set it).
//
// 16-bit checksums are stored zero-extended in the 32-bit trailer, so
// frames are the same shape under every algorithm and the residual
// miss-rate differences come from the check itself, not the framing.
#pragma once

#include <cstdint>
#include <optional>

#include "checksum/checksum.hpp"
#include "util/bytes.hpp"

namespace cksum::arq {

enum class FrameType : std::uint8_t {
  kData = 1,
  kAck = 2,
};

inline constexpr std::size_t kFrameHeaderLen = 8;
inline constexpr std::size_t kFrameTrailerLen = 4;
/// Largest payload a DATA frame carries (fits the u16 length field
/// with room for the header and trailer).
inline constexpr std::size_t kMaxPayload = 0xf000;
/// `aux` value on an ACK carrying no selective acknowledgement.
inline constexpr std::uint16_t kNoSelectiveAck = 0xffff;

struct ArqFrame {
  FrameType type = FrameType::kData;
  alg::Algorithm check = alg::Algorithm::kCrc32;
  std::uint16_t seq = 0;
  std::uint16_t aux = 0;  ///< DATA: sender base; ACK: selective ack
  util::Bytes payload;    ///< empty for ACK frames
};

/// Why a decode produced no frame (or kOk when it did).
enum class DecodeStatus {
  kOk,
  kMalformed,    ///< too short, bad type/alg, or length mismatch
  kCheckFailed,  ///< well-formed but the checksum rejected it
};

/// The frame's integrity check over header + payload, per `alg`.
/// Dispatched through the kernel registry (alg::kern).
std::uint32_t frame_check(alg::Algorithm alg, util::ByteView data) noexcept;

/// Encode one complete wire frame (header | payload | check).
util::Bytes encode_arq_frame(const ArqFrame& f);

/// Decode and verify one delivered frame. Returns the frame only when
/// it is well-formed AND its checksum passes; `status` (optional)
/// reports which stage rejected it otherwise. A corrupted frame that
/// still decodes with kOk is exactly an undetected link error — the
/// event the ARQ simulator's oracle counts.
std::optional<ArqFrame> decode_arq_frame(util::ByteView wire,
                                         DecodeStatus* status = nullptr);

/// Serial-number comparison in the u16 sequence space (RFC 1982
/// style): true when `a` precedes `b`, correct across wraparound as
/// long as the outstanding span stays under 2^15.
constexpr bool seq_before(std::uint16_t a, std::uint16_t b) noexcept {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(a - b)) < 0;
}

}  // namespace cksum::arq
