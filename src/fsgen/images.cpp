// Image and text-encoding generators for the paper's §5.5 pathologies.
//
//  * PBM/PGM black-and-white plots: "several 8-bit .pbm graphs of
//    Internet-backbone RTT measurements ... plotted as black-and-
//    white, and thus each byte is either 0 or 255". Fletcher mod-255
//    treats 0 and 255 as congruent, so these files defeat it almost
//    completely.
//  * Hex-encoded PostScript bitmaps: ASCII lines of hex pairs whose
//    width is a power of two plus a newline; rows repeat ("font
//    definitions appear to be a particularly common case"), which
//    happens to defeat Fletcher mod-256 at the 48-byte cell size.
//  * BinHex-encoded Macintosh documents: "very similar lines of 64
//    bytes followed by an ASCII newline".
#include <string>

#include "fsgen/generator.hpp"

namespace cksum::fsgen {

namespace {

void append_str(util::Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

}  // namespace

util::Bytes generate_pbm_image(util::Rng& rng, std::size_t approx_size) {
  util::Bytes out;
  out.reserve(approx_size + 512);

  // 8-bit binary greymap header, like the paper's graph files.
  const std::size_t width = 256u << rng.below(2);  // 256 or 512
  const std::size_t height = std::max<std::size_t>(
      8, (approx_size - 32) / width);
  std::string header = "P5\n# rtt plot\n" + std::to_string(width) + " " +
                       std::to_string(height) + "\n255\n";
  append_str(out, header);

  // Plot: white background (255), black axis and a scattered
  // measurement trace. Every byte is 0x00 or 0xFF — all of them are
  // zeros mod 255, which is what defeats Fletcher-255 — but the black
  // pixel positions vary from row to row like a real RTT scatter plot,
  // so rows are not trivially congruent under the other sums.
  const std::size_t y_axis_col = 12;
  for (std::size_t row = 0; row < height; ++row) {
    const std::size_t row_start = out.size();
    out.insert(out.end(), width, 0xff);
    std::uint8_t* px = out.data() + row_start;
    px[y_axis_col] = 0x00;
    if (row % 64 == 0) {
      // Dotted gridline.
      for (std::size_t x = y_axis_col; x < width; x += 4) px[x] = 0x00;
    }
    // This row's measurement samples: a random number of points at
    // random columns.
    const std::size_t points = 8 + rng.below(24);
    for (std::size_t p = 0; p < points; ++p)
      px[y_axis_col + 1 + rng.below(width - y_axis_col - 1)] = 0x00;
  }
  return out;
}

util::Bytes generate_hex_postscript(util::Rng& rng, std::size_t approx_size) {
  util::Bytes out;
  out.reserve(approx_size + 1024);
  append_str(out,
             "%!PS-Adobe-2.0 EPSF-1.2\n"
             "%%BoundingBox: 0 0 612 792\n"
             "/picstr 128 string def\n"
             "gsave 306 396 translate\n"
             "128 128 1 [128 0 0 -128 0 128]\n"
             "{currentfile picstr readhexstring pop} image\n");

  // Hex rows: width a power of two *characters* plus a newline, as the
  // paper describes. Rows are mostly FF with a sparse fixed pattern
  // (horizontal strokes of a glyph); identical rows repeat heavily.
  const std::size_t line_chars = 64u << rng.below(3);  // 64/128/256 + '\n'
  static constexpr std::string_view kSparse[] = {"F7", "7F", "FE", "EF",
                                                 "F0", "0F", "C3"};
  std::string current_row;
  auto fresh_row = [&] {
    current_row.assign(line_chars, 'F');
    const std::size_t strokes = 1 + rng.below(3);
    for (std::size_t s = 0; s < strokes; ++s) {
      const std::size_t at = rng.below(line_chars / 2) * 2;
      const auto pat = kSparse[rng.below(std::size(kSparse))];
      current_row[at] = pat[0];
      current_row[at + 1] = pat[1];
    }
  };
  fresh_row();
  while (out.size() < approx_size) {
    // Repeat the same row several times (solid blocks / parallel
    // lines), then pick a new one.
    if (rng.chance(0.25)) fresh_row();
    append_str(out, current_row);
    out.push_back('\n');
  }
  append_str(out, "grestore showpage\n");
  return out;
}

util::Bytes generate_binhex(util::Rng& rng, std::size_t approx_size) {
  util::Bytes out;
  out.reserve(approx_size + 256);
  append_str(out, "(This file must be converted with BinHex 4.0)\n\n:");

  static constexpr std::string_view kAlphabet =
      "!\"#$%&'()*+,-012345689@ABCDEFGHIJKLMNPQRSTUVXYZ[`abcdefhijklmpqr";
  const std::size_t line_len = 64;

  std::string line(line_len, '!');
  for (char& c : line) c = kAlphabet[rng.below(kAlphabet.size())];

  while (out.size() < approx_size) {
    // Each line is the previous line with a few characters mutated —
    // BinHex of structured documents produces exactly this shape.
    const std::size_t mutations = 1 + rng.below(6);
    for (std::size_t m = 0; m < mutations; ++m)
      line[rng.below(line_len)] = kAlphabet[rng.below(kAlphabet.size())];
    append_str(out, line);
    out.push_back('\n');
  }
  out.push_back(':');
  out.push_back('\n');
  return out;
}

}  // namespace cksum::fsgen
