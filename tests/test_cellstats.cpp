// Cell/block distribution collector (Figures 2-3, Tables 4-5 data).
#include <gtest/gtest.h>

#include "checksum/internet.hpp"
#include "core/cellstats.hpp"
#include "fsgen/generator.hpp"
#include "stats/distribution.hpp"
#include "util/rng.hpp"

namespace cksum::core {
namespace {

using util::ByteView;
using util::Bytes;

TEST(CellStats, CountsCellsOfCarvedFile) {
  CellStatsConfig cfg;
  cfg.ks = {1, 2};
  CellStatsCollector c(cfg);
  // 600 bytes = segments of 256, 256, 88.
  // Segment 1: cells 48*5 + 16(short); segment 2 same; segment 3:
  // 48 + 40(short) -> full cells: 5+5+1 = 11, short: 3.
  const Bytes file(600, 0xab);
  c.add_file(ByteView(file));
  EXPECT_EQ(c.cells_seen(), 14u);
  EXPECT_EQ(c.tcp_cells().total(), 14u);
  EXPECT_EQ(c.tcp_blocks(1).total(), 11u);
  // Blocks of 2 within each segment's full-cell run... the collector
  // treats the file's full cells as one sequence: 11 cells -> 10
  // 2-blocks.
  EXPECT_EQ(c.tcp_blocks(2).total(), 10u);
}

TEST(CellStats, ShortCellExclusionFlag) {
  CellStatsConfig cfg;
  cfg.include_short_cells = false;
  cfg.ks = {1};
  CellStatsCollector c(cfg);
  const Bytes file(600, 0xab);
  c.add_file(ByteView(file));
  EXPECT_EQ(c.cells_seen(), 11u);
}

TEST(CellStats, ConstantDataCollapsesDistribution) {
  CellStatsConfig cfg;
  cfg.ks = {1, 2, 4};
  CellStatsCollector c(cfg);
  const Bytes file(4096, 0x00);
  c.add_file(ByteView(file));
  // Every cell sums to zero: one value takes all the mass.
  EXPECT_DOUBLE_EQ(c.tcp_cells().pmax(), 1.0);
  EXPECT_DOUBLE_EQ(c.tcp_blocks(4).match_probability(), 1.0);
  // All pairs congruent; all identical.
  const auto& lc = c.local(2);
  EXPECT_GT(lc.pairs, 0u);
  EXPECT_EQ(lc.congruent, lc.pairs);
  EXPECT_EQ(lc.congruent_identical, lc.congruent);
  EXPECT_DOUBLE_EQ(lc.p_congruent_excluding_identical(), 0.0);
}

TEST(CellStats, BlockSumsAreModularCellSums) {
  // Verify the k-block sum against direct computation on a small file.
  CellStatsConfig cfg;
  cfg.segment_size = 96;  // two full cells per segment, no short cell
  cfg.ks = {2};
  CellStatsCollector c(cfg);
  Bytes file(192);
  util::Rng rng(1);
  rng.fill(file);
  c.add_file(ByteView(file));
  // Cells: 4 full cells; 2-blocks: 3.
  ASSERT_EQ(c.tcp_blocks(2).total(), 3u);
  const auto sum_cell = [&](std::size_t i) {
    return alg::ones_canonical(
        alg::internet_sum(ByteView(file).subspan(i * 48, 48)));
  };
  for (std::size_t i = 0; i < 3; ++i) {
    const std::uint32_t expect = (sum_cell(i) + sum_cell(i + 1)) % 65535u;
    EXPECT_GE(c.tcp_blocks(2).count(expect), 1u) << i;
  }
}

TEST(CellStats, LocalCongruenceCountsOnCraftedData) {
  CellStatsConfig cfg;
  cfg.segment_size = 48;  // one cell per segment
  cfg.ks = {1};
  cfg.local_window_bytes = 96;  // window of 2 cells
  CellStatsCollector c(cfg);
  // Four cells: A, A (identical), B, A' (congruent with A but with
  // different content — the 0x11 byte moved to another even offset).
  Bytes file(192, 0);
  file[0] = 0x11;        // cell 0: sum 0x1100
  file[48] = 0x11;       // cell 1: identical to cell 0
  file[96] = 0x42;       // cell 2: sum 0x4200
  file[144 + 2] = 0x11;  // cell 3: sum 0x1100, content != cell 0
  c.add_file(ByteView(file));
  const auto& lc = c.local(1);
  // In-window (distance <= 2) pairs: (0,1),(0,2),(1,2),(1,3),(2,3).
  EXPECT_EQ(lc.pairs, 5u);
  // Congruent: (0,1) and (1,3). ((0,3) is congruent but out of window.)
  EXPECT_EQ(lc.congruent, 2u);
  // Identical content: only (0,1).
  EXPECT_EQ(lc.congruent_identical, 1u);
  EXPECT_DOUBLE_EQ(lc.p_congruent(), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(lc.p_congruent_excluding_identical(), 1.0 / 5.0);
}

TEST(CellStats, PredictConvolutionMatchesMeasuredOnIidData) {
  // On truly iid random cells, the measured k=2 distribution's match
  // probability approaches the convolution prediction (both near
  // uniform).
  CellStatsConfig cfg;
  cfg.ks = {1, 2};
  CellStatsCollector c(cfg);
  const Bytes file = fsgen::generate_file(fsgen::FileKind::kRandom, 3, 400000);
  c.add_file(ByteView(file));
  const auto d1 = stats::Distribution::from_histogram(c.tcp_cells());
  const double predicted = d1.self_convolve(2).match_probability();
  EXPECT_NEAR(predicted, 1.0 / 65535.0, 2.0 / 65535.0);
}

TEST(CellStats, RealDataBlockDistributionsFlattenWithK) {
  // Corollary 3 observed on generator data: PMax of the k-block
  // distribution is non-increasing in k (approximately; sampling
  // noise allows tiny violations, so compare loosely).
  CellStatsConfig cfg;
  cfg.ks = {1, 2, 4};
  CellStatsCollector c(cfg);
  const Bytes file = fsgen::generate_file(fsgen::FileKind::kCSource, 5, 200000);
  c.add_file(ByteView(file));
  EXPECT_GE(c.tcp_blocks(1).pmax() * 1.2, c.tcp_blocks(2).pmax());
  EXPECT_GE(c.tcp_blocks(2).pmax() * 1.2, c.tcp_blocks(4).pmax());
}


TEST(CellStats, MergeEqualsSequential) {
  CellStatsConfig cfg;
  cfg.ks = {1, 2};
  CellStatsCollector whole(cfg), a(cfg), b(cfg);
  const Bytes f1 = fsgen::generate_file(fsgen::FileKind::kText, 1, 20000);
  const Bytes f2 = fsgen::generate_file(fsgen::FileKind::kGmonProfile, 2, 20000);
  whole.add_file(ByteView(f1));
  whole.add_file(ByteView(f2));
  a.add_file(ByteView(f1));
  b.add_file(ByteView(f2));
  a.merge(b);
  EXPECT_EQ(a.cells_seen(), whole.cells_seen());
  EXPECT_EQ(a.tcp_cells().counts(), whole.tcp_cells().counts());
  EXPECT_EQ(a.tcp_blocks(2).counts(), whole.tcp_blocks(2).counts());
  EXPECT_EQ(a.local(2).pairs, whole.local(2).pairs);
  EXPECT_EQ(a.local(2).congruent, whole.local(2).congruent);
  // Config mismatch rejected.
  CellStatsConfig other;
  other.ks = {1};
  CellStatsCollector c(other);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(CellStats, UnknownKThrows) {
  CellStatsConfig cfg;
  cfg.ks = {1};
  CellStatsCollector c(cfg);
  EXPECT_THROW(c.tcp_blocks(3), std::out_of_range);
  EXPECT_THROW(c.local(3), std::out_of_range);
}

}  // namespace
}  // namespace cksum::core
