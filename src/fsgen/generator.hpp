// Synthetic file generators — the substitute for the real 1995 UNIX
// filesystems the paper measured (see DESIGN.md §2).
//
// Each generator produces one *class* of file the paper names, tuned
// to reproduce the statistical properties that drive the paper's
// results: skewed byte-value distributions, long runs of 0x00/0xFF,
// repeated lines and 48/64/2^k-byte structures, and strong locality
// (nearby blocks drawn from the same local distribution).
//
// All generators are deterministic functions of (kind, seed, size).
#pragma once

#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace cksum::fsgen {

enum class FileKind {
  kText,           ///< English-like prose (skewed ASCII, repeated phrases)
  kCSource,        ///< C source code (heavy structural repetition)
  kExecutable,     ///< ELF-like binary: code, zero-filled bss, string table
  kGmonProfile,    ///< profiling data: almost all zeros, sparse repeated counts
  kPbmImage,       ///< black/white raster: bytes are only 0x00/0xFF (F-255 pathology)
  kHexPostscript,  ///< hex-encoded bitmap, 2^k+1-byte lines (F-256 pathology)
  kBinhex,         ///< BinHex-style 64-byte near-identical lines
  kWordProcessor,  ///< text sections separated by ~200-byte 0x00/0xFF runs
  kRandom,         ///< already-compressed/encrypted data (uniform bytes)
  kTarArchive,     ///< tar: 512-byte blocks, NUL padding, repeated headers
  kMailSpool,      ///< mbox: near-identical RFC-822 header stanzas
};

inline constexpr FileKind kAllKinds[] = {
    FileKind::kText,          FileKind::kCSource,
    FileKind::kExecutable,    FileKind::kGmonProfile,
    FileKind::kPbmImage,      FileKind::kHexPostscript,
    FileKind::kBinhex,        FileKind::kWordProcessor,
    FileKind::kRandom,        FileKind::kTarArchive,
    FileKind::kMailSpool,
};

constexpr std::string_view name(FileKind k) noexcept {
  switch (k) {
    case FileKind::kText: return "text";
    case FileKind::kCSource: return "c-source";
    case FileKind::kExecutable: return "executable";
    case FileKind::kGmonProfile: return "gmon-profile";
    case FileKind::kPbmImage: return "pbm-image";
    case FileKind::kHexPostscript: return "hex-postscript";
    case FileKind::kBinhex: return "binhex";
    case FileKind::kWordProcessor: return "word-processor";
    case FileKind::kRandom: return "random";
    case FileKind::kTarArchive: return "tar-archive";
    case FileKind::kMailSpool: return "mail-spool";
  }
  return "?";
}

/// Generate one file of roughly `approx_size` bytes (generators honour
/// the target within a structural unit — a line, record or section).
util::Bytes generate_file(FileKind kind, std::uint64_t seed,
                          std::size_t approx_size);

/// Individual generators (exposed for targeted tests and the
/// pathology bench).
util::Bytes generate_text(util::Rng& rng, std::size_t approx_size);
util::Bytes generate_c_source(util::Rng& rng, std::size_t approx_size);
util::Bytes generate_executable(util::Rng& rng, std::size_t approx_size);
util::Bytes generate_gmon_profile(util::Rng& rng, std::size_t approx_size);
util::Bytes generate_pbm_image(util::Rng& rng, std::size_t approx_size);
util::Bytes generate_hex_postscript(util::Rng& rng, std::size_t approx_size);
util::Bytes generate_binhex(util::Rng& rng, std::size_t approx_size);
util::Bytes generate_word_processor(util::Rng& rng, std::size_t approx_size);
util::Bytes generate_random(util::Rng& rng, std::size_t approx_size);
util::Bytes generate_tar_archive(util::Rng& rng, std::size_t approx_size);
util::Bytes generate_mail_spool(util::Rng& rng, std::size_t approx_size);

}  // namespace cksum::fsgen
