// Byte-buffer helpers: big-endian loads/stores (network order),
// hex formatting, and span slicing with bounds checks.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cksum::util {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Load a 16-bit big-endian (network order) value.
constexpr std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

/// Load a 32-bit big-endian value.
constexpr std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

/// Load a 64-bit big-endian value.
constexpr std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint64_t>(load_be32(p)) << 32) |
         static_cast<std::uint64_t>(load_be32(p + 4));
}

/// Store a 16-bit value big-endian.
constexpr void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
}

/// Store a 32-bit value big-endian.
constexpr void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

/// Store a 64-bit value big-endian.
constexpr void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

/// Checked subspan: asserts the range is inside `data`.
inline ByteView slice(ByteView data, std::size_t offset, std::size_t len) {
  assert(offset <= data.size() && len <= data.size() - offset);
  return data.subspan(offset, len);
}

/// Render bytes as lowercase hex, optionally grouped.
std::string to_hex(ByteView data, std::size_t group = 0);

/// Parse hex (whitespace tolerated). Throws std::invalid_argument on
/// malformed input.
Bytes from_hex(std::string_view hex);

/// Append the bytes of a string to a buffer.
void append(Bytes& out, std::string_view text);

}  // namespace cksum::util
