#!/usr/bin/env python3
"""Distill a google-benchmark JSON dump into the BENCH_splice.json
trajectory at the repo root.

Usage: bench_distill.py RAW_JSON TRAJECTORY_JSON [--quick] [--check]

The trajectory file is a JSON array, one entry per bench.sh run:

    {
      "date": "2026-08-05T12:34:56Z",
      "commit": "abc1234...",
      "quick": false,
      "splices_per_sec": {"dfs": ..., "flat": ..., "reference": ...},
      "pairs_per_sec":   {"dfs": ..., "flat": ..., "reference": ...},
      "speedup_dfs_vs_flat": ...,
      "speedup_dfs_vs_reference": ...
    }

--check exits non-zero if the new DFS rate fell below 1/5 of the
previous entry's, or if the DFS evaluator is slower than the flat one.
"""

import argparse
import datetime
import json
import subprocess
import sys

BENCH_KEYS = {
    "BM_SpliceDfs": "dfs",
    "BM_SpliceFlat": "flat",
    "BM_SpliceReference": "reference",
}


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("raw", help="google-benchmark --benchmark_out JSON")
    ap.add_argument("trajectory", help="BENCH_splice.json to append to")
    ap.add_argument("--quick", action="store_true")
    ap.add_argument("--check", action="store_true")
    args = ap.parse_args()

    with open(args.raw) as f:
        raw = json.load(f)

    splices = {}
    pairs = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        key = BENCH_KEYS.get(b.get("name", "").split("/")[0])
        if key is None:
            continue
        splices[key] = b.get("items_per_second")
        pairs[key] = b.get("pairs_per_sec")

    missing = [k for k in BENCH_KEYS.values() if splices.get(k) is None]
    if missing:
        print(f"bench_distill: missing benchmarks: {missing}", file=sys.stderr)
        return 1

    entry = {
        "date": datetime.datetime.now(datetime.timezone.utc)
                .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "commit": git_commit(),
        "quick": args.quick,
        "splices_per_sec": splices,
        "pairs_per_sec": pairs,
        "speedup_dfs_vs_flat": splices["dfs"] / splices["flat"],
        "speedup_dfs_vs_reference": splices["dfs"] / splices["reference"],
    }

    try:
        with open(args.trajectory) as f:
            trajectory = json.load(f)
        if not isinstance(trajectory, list):
            raise ValueError("trajectory is not a JSON array")
    except FileNotFoundError:
        trajectory = []

    previous = trajectory[-1] if trajectory else None
    trajectory.append(entry)
    with open(args.trajectory, "w") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")

    print(f"dfs:       {splices['dfs']:.3e} splices/sec")
    print(f"flat:      {splices['flat']:.3e} splices/sec "
          f"({entry['speedup_dfs_vs_flat']:.1f}x slower than dfs)")
    print(f"reference: {splices['reference']:.3e} splices/sec "
          f"({entry['speedup_dfs_vs_reference']:.1f}x slower than dfs)")
    print(f"appended entry #{len(trajectory)} to {args.trajectory}")

    if args.check:
        ok = True
        if entry["speedup_dfs_vs_flat"] < 1.0:
            print("CHECK FAILED: DFS evaluator slower than flat baseline",
                  file=sys.stderr)
            ok = False
        if previous is not None:
            prev_dfs = previous.get("splices_per_sec", {}).get("dfs")
            if prev_dfs and splices["dfs"] < prev_dfs / 5.0:
                print(f"CHECK FAILED: DFS rate {splices['dfs']:.3e} is >5x "
                      f"below previous {prev_dfs:.3e}", file=sys.stderr)
                ok = False
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
