#include "checksum/generic_crc.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace cksum::alg {

GenericCrc::GenericCrc(int width, std::uint32_t poly_normal)
    : width_(width),
      poly_(reflect_bits(poly_normal, std::min(std::max(width, 1), 32))),
      // Clamp before shifting: member initialisers run before the
      // range check below can throw, and 1u << 33 is undefined.
      mask_(width >= 32 ? 0xFFFFFFFFu
                        : width >= 1 ? ((1u << width) - 1u) : 0u) {
  if (width < 1 || width > 32)
    throw std::invalid_argument("GenericCrc: width must be in [1,32]");
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n & mask_;
    // For widths < 8 the byte still shifts through 8 bit steps; the
    // register simply holds fewer bits. Feeding input bits into the
    // low end (reflected form) makes this uniform across widths.
    std::uint32_t in = n;
    c = 0;
    for (int k = 0; k < 8; ++k) {
      const std::uint32_t bit = (c ^ in) & 1u;
      c >>= 1;
      in >>= 1;
      if (bit) c ^= poly_;
    }
    table_[n] = c & mask_;
  }
}

GenericCrc::Combiner::Combiner(const std::vector<std::uint32_t>& rows) {
  // nibble_[t][v] = image of the 4-bit group v at bit position 4t
  // under the zeros-operator. Rows past the register width act as 0,
  // so narrow widths fill the high tables with zeros and any (in-range)
  // CRC value maps correctly.
  for (int t = 0; t < 8; ++t) {
    for (std::uint32_t v = 0; v < 16; ++v) {
      std::uint32_t out = 0;
      for (int b = 0; b < 4; ++b) {
        const std::size_t row = static_cast<std::size_t>(4 * t + b);
        if ((v >> b & 1u) != 0 && row < rows.size()) out ^= rows[row];
      }
      nibble_[t][v] = out;
    }
  }
}

const GenericCrc::Combiner& CombinerCache::get(std::size_t len_b) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memo_.find(len_b);
  if (it == memo_.end())
    it = memo_.emplace(len_b, crc_->combiner(len_b)).first;
  return it->second;
}

std::uint32_t GenericCrc::update(std::uint32_t crc,
                                 util::ByteView data) const noexcept {
  std::uint32_t c = (crc ^ mask_) & mask_;
  if (width_ >= 8) {
    for (std::uint8_t byte : data)
      c = table_[(c ^ byte) & 0xffu] ^ (c >> 8);
  } else {
    // Narrow registers: the table already folds a whole input byte.
    for (std::uint8_t byte : data) c = table_[(c ^ byte) & 0xffu];
  }
  return (c ^ mask_) & mask_;
}

std::uint32_t GenericCrc::update_bitwise(std::uint32_t crc,
                                         util::ByteView data) const noexcept {
  std::uint32_t c = (crc ^ mask_) & mask_;
  for (std::uint8_t byte : data) {
    std::uint32_t in = byte;
    for (int k = 0; k < 8; ++k) {
      const std::uint32_t bit = (c ^ in) & 1u;
      c >>= 1;
      in >>= 1;
      if (bit) c ^= poly_;
    }
  }
  return (c ^ mask_) & mask_;
}

std::vector<std::uint32_t> GenericCrc::zeros_rows(std::size_t len) const noexcept {
  const std::size_t w = static_cast<std::size_t>(width_);
  auto times = [w](const std::vector<std::uint32_t>& m, std::uint32_t vec) {
    std::uint32_t out = 0;
    for (std::size_t i = 0; i < w && vec != 0; ++i, vec >>= 1)
      if (vec & 1u) out ^= m[i];
    return out;
  };
  auto square = [&](const std::vector<std::uint32_t>& m) {
    std::vector<std::uint32_t> out(w);
    for (std::size_t i = 0; i < w; ++i) out[i] = times(m, m[i]);
    return out;
  };

  // One-zero-bit operator.
  std::vector<std::uint32_t> bit(w);
  bit[0] = poly_;
  for (std::size_t i = 1; i < w; ++i) bit[i] = 1u << (i - 1);
  // -> one zero byte.
  std::vector<std::uint32_t> power = square(square(square(bit)));

  // Identity.
  std::vector<std::uint32_t> result(w);
  for (std::size_t i = 0; i < w; ++i) result[i] = 1u << i;

  while (len != 0) {
    if (len & 1u) {
      std::vector<std::uint32_t> next(w);
      for (std::size_t i = 0; i < w; ++i) next[i] = times(power, result[i]);
      result = next;
    }
    len >>= 1;
    if (len != 0) power = square(power);
  }
  return result;
}

std::uint32_t GenericCrc::combine(std::uint32_t crc_a, std::uint32_t crc_b,
                                  std::size_t len_b) const noexcept {
  const auto rows = zeros_rows(len_b);
  std::uint32_t out = 0;
  std::uint32_t vec = crc_a;
  for (std::size_t i = 0; i < rows.size() && vec != 0; ++i, vec >>= 1)
    if (vec & 1u) out ^= rows[i];
  return (out ^ crc_b) & mask_;
}

double GenericCrc::value_space() const noexcept {
  return static_cast<double>(1ull << width_);
}

std::uint32_t standard_poly(int width) {
  switch (width) {
    case 3: return 0x3;          // CRC-3/GSM
    case 4: return 0x3;          // CRC-4/ITU
    case 5: return 0x15;         // CRC-5/USB
    case 6: return 0x27;         // CRC-6/CDMA2000-A
    case 7: return 0x09;         // CRC-7/MMC
    case 8: return 0x07;         // CRC-8/ATM HEC polynomial
    case 9: return 0x119;        // Koopman
    case 10: return 0x233;       // CRC-10/ATM OAM
    case 11: return 0x385;       // CRC-11/FlexRay
    case 12: return 0x80F;       // CRC-12/DECT
    case 13: return 0x1CF5;      // CRC-13/BBC
    case 14: return 0x0805;      // CRC-14/DARC
    case 15: return 0x4599;      // CRC-15/CAN
    case 16: return 0x1021;      // CRC-16/CCITT
    case 17: return 0x1685B;     // CRC-17/CAN-FD
    case 18: return 0x23979;     // Koopman-style
    case 19: return 0x6FB57;     // Koopman-style
    case 20: return 0xB5827;     // Koopman-style
    case 21: return 0x102899;    // CRC-21/CAN-FD
    case 22: return 0x308FD3;    // Koopman-style
    case 23: return 0x540DF0;    // Koopman-style
    case 24: return 0x864CFB;    // CRC-24/OpenPGP
    case 25: return 0x101690C;   // Koopman-style
    case 26: return 0x2030B9C7;  // Koopman-style
    case 28: return 0x8F90E3;    // Koopman-style (28-bit)
    case 30: return 0x2030B9C7;  // CRC-30/CDMA
    case 32: return 0x04C11DB7;  // CRC-32/IEEE, AAL5
    default:
      // Fall back to x^w + x + 1 style polynomial; adequate for the
      // miss-rate sweep, which only needs "a reasonable CRC" per width.
      return 0x3;
  }
}

}  // namespace cksum::alg
