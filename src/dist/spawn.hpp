// Local worker process management: the coordinator CLI's --workers N
// mode self-spawns N copies of the running binary as --connect
// workers, and the fault drills SIGKILL one mid-lease.
#pragma once

#include <string>
#include <sys/types.h>
#include <vector>

namespace cksum::dist {

/// Absolute path of the running executable (/proc/self/exe), or ""
/// when unreadable.
std::string self_exe_path();

/// fork+execv. Returns the child pid, or -1 on failure. The child's
/// stdout is left alone (workers write only to stderr), so the
/// coordinator's report stream stays clean.
pid_t spawn_process(const std::vector<std::string>& argv);

/// Non-blocking reap. Returns true when the child has exited, storing
/// its exit code (or 128+signal) in *code.
bool try_wait_process(pid_t pid, int* code);

/// Blocking reap; returns exit code, or 128+signal, or -1 on error.
int wait_process(pid_t pid);

/// SIGKILL — the fault drills' worker-loss injection.
void kill_process(pid_t pid);

}  // namespace cksum::dist
