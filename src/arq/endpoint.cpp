#include "arq/endpoint.hpp"

#include <algorithm>

namespace cksum::arq {

std::string_view name(Policy p) noexcept {
  switch (p) {
    case Policy::kStopAndWait: return "stop-and-wait";
    case Policy::kGoBackN: return "go-back-N";
    case Policy::kSelectiveRepeat: return "selective-repeat";
  }
  return "unknown";
}

std::string_view manifest_key(Policy p) noexcept {
  switch (p) {
    case Policy::kStopAndWait: return "stop_and_wait";
    case Policy::kGoBackN: return "go_back_n";
    case Policy::kSelectiveRepeat: return "selective_repeat";
  }
  return "unknown";
}

// --- Sender ---------------------------------------------------------

Sender::Sender(const ArqConfig& cfg, std::vector<util::Bytes> payloads)
    : cfg_(cfg),
      payloads_(std::move(payloads)),
      slots_(payloads_.size()),
      first_sent_(payloads_.size(), ~std::uint64_t{0}),
      jitter_(cfg.jitter_seed) {
  if (cfg_.rto == 0) cfg_.rto = 1;
  if (cfg_.rto_max < cfg_.rto) cfg_.rto_max = cfg_.rto;
}

std::uint64_t Sender::backoff(unsigned retries) noexcept {
  // Exponential base doubling per retry, capped, plus seeded jitter of
  // up to a quarter RTO so retransmission waves decorrelate.
  const unsigned shift = std::min(retries, 20u);
  std::uint64_t t = cfg_.rto << shift;
  if (t > cfg_.rto_max || (t >> shift) != cfg_.rto) t = cfg_.rto_max;
  return t + jitter_.below(cfg_.rto / 4 + 1);
}

util::Bytes Sender::encode_data(std::size_t index) const {
  ArqFrame f;
  f.type = FrameType::kData;
  f.check = cfg_.checksum;
  f.seq = static_cast<std::uint16_t>(index);
  f.aux = static_cast<std::uint16_t>(base_);  // current base: lets the
                                              // receiver skip abandoned holes
  f.payload = payloads_[index];
  return encode_arq_frame(f);
}

void Sender::advance_base() {
  while (base_ < payloads_.size() &&
         (slots_[base_].state == SlotState::kAcked ||
          slots_[base_].state == SlotState::kAbandoned))
    ++base_;
}

void Sender::abandon(std::size_t index) {
  slots_[index].state = SlotState::kAbandoned;
  abandoned_.push_back(index);
  ++stats_.gave_up;
}

void Sender::retransmit(std::size_t from, bool whole_window,
                        std::uint64_t now, std::vector<util::Bytes>* out) {
  const std::size_t end = whole_window ? next_send_ : from + 1;
  for (std::size_t i = from; i < end && i < next_send_; ++i) {
    Slot& s = slots_[i];
    if (s.state != SlotState::kInFlight) continue;
    if (s.retries >= cfg_.retry_budget) {
      abandon(i);
      continue;
    }
    ++s.retries;
    ++stats_.retransmits;
    s.deadline = now + backoff(s.retries);
    out->push_back(encode_data(i));
  }
  advance_base();
}

std::vector<util::Bytes> Sender::poll(std::uint64_t now) {
  std::vector<util::Bytes> out;

  // Timer expiries. Stop-and-wait and go-back-N retransmit the whole
  // in-flight window when the base frame's timer fires (one timeout
  // event per wave); selective repeat retries each expired frame
  // individually.
  if (cfg_.policy == Policy::kSelectiveRepeat) {
    for (std::size_t i = base_; i < next_send_; ++i) {
      if (slots_[i].state != SlotState::kInFlight ||
          slots_[i].deadline > now)
        continue;
      ++stats_.timeouts;
      retransmit(i, false, now, &out);
    }
  } else if (base_ < next_send_ &&
             slots_[base_].state == SlotState::kInFlight &&
             slots_[base_].deadline <= now) {
    ++stats_.timeouts;
    retransmit(base_, true, now, &out);
  }

  // Fast retransmit: three consecutive no-progress ACKs resend the
  // base frame without waiting for its timer (go-back-N and selective
  // repeat; stop-and-wait has no dup-ACK machinery).
  if (fast_retransmit_pending_) {
    fast_retransmit_pending_ = false;
    if (base_ < next_send_ && slots_[base_].state == SlotState::kInFlight) {
      ++stats_.fast_retransmits;
      retransmit(base_, false, now, &out);
    }
  }

  // New transmissions while the window has room.
  while (next_send_ < payloads_.size() &&
         next_send_ - base_ < cfg_.effective_window()) {
    const std::size_t i = next_send_++;
    Slot& s = slots_[i];
    s.state = SlotState::kInFlight;
    s.retries = 0;
    s.deadline = now + backoff(0);
    if (first_sent_[i] == ~std::uint64_t{0}) first_sent_[i] = now;
    ++stats_.data_sent;
    out.push_back(encode_data(i));
  }
  return out;
}

std::uint64_t Sender::next_deadline() const noexcept {
  if (cfg_.policy == Policy::kSelectiveRepeat) {
    std::uint64_t earliest = ~std::uint64_t{0};
    for (std::size_t i = base_; i < next_send_; ++i)
      if (slots_[i].state == SlotState::kInFlight)
        earliest = std::min(earliest, slots_[i].deadline);
    return earliest;
  }
  // Single-timer policies: the base frame owns the timer (poll() only
  // acts on it, and the wave retransmit resets every deadline behind
  // it). Jitter can give a later slot an earlier deadline, so taking
  // the minimum here would report a time at which poll() does nothing.
  if (base_ < next_send_ && slots_[base_].state == SlotState::kInFlight)
    return slots_[base_].deadline;
  return ~std::uint64_t{0};
}

void Sender::on_frame(util::ByteView wire) {
  DecodeStatus st = DecodeStatus::kOk;
  const auto f = decode_arq_frame(wire, &st);
  if (!f || f->type != FrameType::kAck) {
    if (st == DecodeStatus::kCheckFailed)
      ++stats_.ack_rejects;
    else
      ++stats_.ack_malformed;
    return;
  }
  ++stats_.acks_received;

  bool progress = false;

  // Cumulative: the ACK's seq is the receiver's next expected — every
  // outstanding frame before it is acknowledged. A step beyond the
  // in-flight span can only come from a corrupted ACK that slipped
  // past the checksum (or an ancient duplicate); it is ignored.
  const std::uint16_t step =
      static_cast<std::uint16_t>(f->seq - static_cast<std::uint16_t>(base_));
  if (step != 0) {
    if (step <= next_send_ - base_) {
      for (std::size_t i = base_; i < base_ + step; ++i)
        if (slots_[i].state == SlotState::kInFlight)
          slots_[i].state = SlotState::kAcked;
      advance_base();
      progress = true;
    } else {
      ++stats_.stale_acks;
    }
  }

  // Selective: acknowledges one frame inside the window (selective
  // repeat's per-frame ACK channel).
  if (f->aux != kNoSelectiveAck) {
    const std::uint16_t off = static_cast<std::uint16_t>(
        f->aux - static_cast<std::uint16_t>(base_));
    if (off < next_send_ - base_) {
      const std::size_t i = base_ + off;
      if (slots_[i].state == SlotState::kInFlight) {
        slots_[i].state = SlotState::kAcked;
        advance_base();
        progress = true;
      }
    }
  }

  if (progress) {
    dup_ack_run_ = 0;
    fast_retransmit_pending_ = false;
  } else if (base_ < next_send_ && cfg_.policy != Policy::kStopAndWait) {
    ++stats_.dup_acks;
    if (++dup_ack_run_ >= 3) {
      fast_retransmit_pending_ = true;
      dup_ack_run_ = 0;
    }
  }
}

// --- Receiver -------------------------------------------------------

util::Bytes Receiver::make_ack(std::uint16_t sel) {
  ArqFrame f;
  f.type = FrameType::kAck;
  f.check = cfg_.checksum;
  f.seq = next_expected_;
  f.aux = sel;
  ++stats_.acks_sent;
  return encode_arq_frame(f);
}

void Receiver::skip_to(std::uint16_t base) {
  // The sender's base is ahead of us only when it abandoned frames we
  // never received; walk forward, surfacing anything we had buffered
  // along the way and counting the true holes as skipped. The step is
  // bounded to a quarter of the sequence space so a corrupted base
  // field that slipped the checksum cannot spin the receiver all the
  // way around — a shorter bogus skip is survivable (the affected
  // frames surface as residual loss in the simulator's oracle).
  const std::uint16_t step = static_cast<std::uint16_t>(base - next_expected_);
  if (step == 0 || step > 0x4000) return;
  while (next_expected_ != base) {
    const auto it = buffer_.find(next_expected_);
    if (it != buffer_.end()) {
      deliveries_.push_back({next_expected_, std::move(it->second)});
      ++stats_.delivered;
      buffer_.erase(it);
    } else {
      ++stats_.skipped;
    }
    ++next_expected_;
  }
}

std::vector<util::Bytes> Receiver::on_frame(util::ByteView wire) {
  ++stats_.deliveries_seen;
  DecodeStatus st = DecodeStatus::kOk;
  auto f = decode_arq_frame(wire, &st);
  if (!f || f->type != FrameType::kData) {
    if (st == DecodeStatus::kCheckFailed)
      ++stats_.check_rejects;
    else
      ++stats_.malformed;
    return {};
  }

  skip_to(f->aux);

  const bool sr = cfg_.policy == Policy::kSelectiveRepeat;
  const std::uint16_t sel = sr ? f->seq : kNoSelectiveAck;
  const std::uint16_t off =
      static_cast<std::uint16_t>(f->seq - next_expected_);

  if (off >= 0x8000) {
    // Before the window: already delivered (its ACK was lost) or
    // skipped. Re-ACK so the sender stops retrying it.
    ++stats_.duplicates;
    return {make_ack(sel)};
  }
  if (off >= cfg_.effective_window()) {
    // Beyond any sequence the sender can legitimately have in flight:
    // a corrupted seq that slipped the checksum. Drop silently.
    ++stats_.out_of_window;
    return {};
  }

  if (off == 0) {
    ++stats_.accepted;
    deliveries_.push_back({f->seq, std::move(f->payload)});
    ++stats_.delivered;
    ++next_expected_;
    // Selective repeat: the hole just filled may release a buffered run.
    for (auto it = buffer_.find(next_expected_); it != buffer_.end();
         it = buffer_.find(next_expected_)) {
      deliveries_.push_back({next_expected_, std::move(it->second)});
      ++stats_.delivered;
      buffer_.erase(it);
      ++next_expected_;
    }
    return {make_ack(sel)};
  }

  // In-window but out of order.
  if (!sr) {
    // Stop-and-wait / go-back-N discard and re-ACK the last in-order
    // point — the sender sees it as a duplicate ACK.
    ++stats_.discarded;
    return {make_ack(kNoSelectiveAck)};
  }
  if (buffer_.count(f->seq) != 0) {
    ++stats_.duplicates;
    return {make_ack(sel)};
  }
  buffer_.emplace(f->seq, std::move(f->payload));
  ++stats_.buffered;
  return {make_ack(sel)};
}

}  // namespace cksum::arq
