#include "faults/link.hpp"

#include <algorithm>

#include "core/error_inject.hpp"

namespace cksum::faults {

void LinkStats::merge(const LinkStats& o) noexcept {
  frames_in += o.frames_in;
  deliveries += o.deliveries;
  drops += o.drops;
  duplicates += o.duplicates;
  corruptions += o.corruptions;
  truncations += o.truncations;
  reorders += o.reorders;
}

std::vector<LinkDelivery> LinkChannel::transmit(util::ByteView frame) {
  ++stats_.frames_in;

  if (rng_.chance(plan_.drop_rate)) {
    ++stats_.drops;
    return {};
  }

  std::size_t copies = 1;
  if (rng_.chance(plan_.duplicate_rate)) {
    ++stats_.duplicates;
    copies = 2;
  }

  const unsigned bits_lo = std::clamp(plan_.burst_bits_min, 1u, 64u);
  const unsigned bits_hi = std::clamp(plan_.burst_bits_max, bits_lo, 64u);

  std::vector<LinkDelivery> out;
  out.reserve(copies);
  for (std::size_t k = 0; k < copies; ++k) {
    LinkDelivery d;
    d.bytes.assign(frame.begin(), frame.end());

    if (!d.bytes.empty() && rng_.chance(plan_.corrupt_rate)) {
      // A burst longer than the (possibly tiny) frame is clipped to it;
      // every frame byte is fair game, trailer included.
      const unsigned len = std::min<unsigned>(
          bits_lo + static_cast<unsigned>(rng_.below(bits_hi - bits_lo + 1)),
          static_cast<unsigned>(std::min<std::size_t>(8 * d.bytes.size(), 64)));
      core::apply_burst(d.bytes,
                        core::random_burst(rng_, 8 * d.bytes.size(), len));
      ++stats_.corruptions;
    }

    if (!d.bytes.empty() && rng_.chance(plan_.truncate_rate)) {
      d.bytes.resize(rng_.below(d.bytes.size()));
      ++stats_.truncations;
    }

    if (plan_.reorder_delay_max > 0 && rng_.chance(plan_.reorder_rate)) {
      d.extra_delay = 1 + rng_.below(plan_.reorder_delay_max);
      ++stats_.reorders;
    }

    ++stats_.deliveries;
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace cksum::faults
