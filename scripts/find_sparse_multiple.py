#!/usr/bin/env python3
"""Search for the sparse multiple of the CRC-32 generator used by the
chorba kernel (src/checksum/kernels/chorba.cpp).

The chorba kernel (after arXiv 2412.16398) eliminates message words by
XOR-ing copies of a low-weight multiple M(x) of the CRC-32 generator
G(x) = 0x104C11DB7 into the bit stream: adding a multiple of G never
changes the CRC, and if M is sparse each eliminated 64-bit word costs
only a handful of shift+XOR taps into a small window of carry words —
no lookup tables, no carry-less-multiply hardware.

The kernel wants M = x^emax + x^e4 + x^e3 + x^e2 + x^e1 + 1 with

  * weight 6 (five taps per eliminated word — cheap enough to beat
    slicing-by-8 while staying register-resident),
  * every non-leading exponent <= emax - 64, so no tap lands back in
    the word currently being eliminated, and
  * emax <= 448, so the carry window fits in eight 64-bit registers.

By the birthday bound a random degree-32 polynomial has ~5 such
multiples; this script enumerates them (meet-in-the-middle over
x^e mod G) and prints each with its tap distances D = emax - e.  Run
it to regenerate or audit the constants baked into chorba.cpp; the
divisibility itself is re-proven from scratch by a unit test
(tests/test_kernels.cpp, ChorbaKernel.SparseMultipleDividesGenerator).

Usage: find_sparse_multiple.py [--max-degree 448] [--min-gap 64]
"""

import argparse

POLY = 0x104C11DB7  # CRC-32 generator, normal (MSB-first) form


def x_pow_mod(max_exp):
    """x^e mod POLY for e in [0, max_exp], as 32-bit values."""
    vals = [0] * (max_exp + 1)
    vals[0] = 1
    v = 1
    for e in range(1, max_exp + 1):
        v <<= 1
        if v & (1 << 32):
            v ^= POLY
        vals[e] = v
    return vals


def search(max_degree, min_gap):
    vals = x_pow_mod(max_degree)
    found = []
    # M = x^emax + x^d + x^c + x^b + x^a + 1 == 0 (mod G), i.e.
    # vals[emax] ^ 1 == vals[a]^vals[b] ^ vals[c]^vals[d].
    # Meet in the middle: pairs (a<b) hashed by XOR, then for each
    # (emax, c<d) look the residue up.
    for emax in range(min_gap + 4, max_degree + 1):
        limit = emax - min_gap
        pairs = {}
        for b in range(2, limit + 1):
            vb = vals[b]
            for a in range(1, b):
                pairs.setdefault(vals[a] ^ vb, []).append((a, b))
        target0 = vals[emax] ^ 1
        for d in range(2, limit + 1):
            vd = vals[d]
            for c in range(1, d):
                for a, b in pairs.get(target0 ^ vals[c] ^ vd, ()):
                    exps = (0, a, b, c, d, emax)
                    if len(set(exps)) != 6 or (a, b) >= (c, d):
                        continue
                    if sorted(exps) != list(exps):
                        exps = tuple(sorted(exps))
                    found.append(exps)
    # The same multiple is found once per way of splitting the four
    # middle exponents into two ordered pairs; dedup.
    uniq = sorted(set(found), key=lambda e: (e[-1], e))
    return uniq


def verify(exps):
    m = 0
    for e in exps:
        m ^= 1 << e
    # Long division of M by POLY over GF(2).
    deg = m.bit_length() - 1
    while deg >= 32:
        m ^= POLY << (deg - 32)
        deg = m.bit_length() - 1
    return m == 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--max-degree", type=int, default=448)
    ap.add_argument("--min-gap", type=int, default=64)
    args = ap.parse_args()
    sols = search(args.max_degree, args.min_gap)
    for exps in sols:
        assert verify(exps), exps
        emax = exps[-1]
        taps = [emax - e for e in exps[:-1]]
        print(f"M = {' + '.join(f'x^{e}' for e in reversed(exps))}"
              f"   tap distances {sorted(taps)}")
    if not sols:
        print(f"no weight-6 multiple with degree <= {args.max_degree} and "
              f"gap >= {args.min_gap}; widen --max-degree")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
