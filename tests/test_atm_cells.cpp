// ATM cell layer, AAL5 reassembler state machine, and loss models —
// including the validation that exhaustive drop patterns fed through
// the reassembler produce exactly the splices the enumerator lists.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "atm/cell.hpp"
#include "atm/demux.hpp"
#include "atm/loss.hpp"
#include "atm/reassembler.hpp"
#include "atm/splice.hpp"
#include "util/rng.hpp"

namespace cksum::atm {
namespace {

using util::ByteView;
using util::Bytes;

Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  Bytes b(n);
  util::Rng rng(seed);
  rng.fill(b);
  return b;
}

LossStats& stats_sink() {
  static LossStats s;
  return s;
}

TEST(Hec, KnownStructure) {
  // HEC of an all-zero header is the coset value itself.
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  EXPECT_EQ(compute_hec(zeros), 0x55);
}

TEST(CellHeader, WriteParseRoundTrip) {
  CellHeader h;
  h.gfc = 0x2;
  h.vpi = 0xAB;
  h.vci = 0x0CDE;
  h.pti = 0x3;
  h.clp = true;
  std::uint8_t raw[kCellHeaderLen];
  h.write(raw);
  const auto parsed = CellHeader::parse(ByteView(raw, sizeof raw));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->gfc, 0x2);
  EXPECT_EQ(parsed->vpi, 0xAB);
  EXPECT_EQ(parsed->vci, 0x0CDE);
  EXPECT_EQ(parsed->pti, 0x3);
  EXPECT_TRUE(parsed->clp);
  EXPECT_TRUE(parsed->end_of_message());
}

TEST(CellHeader, HecDetectsEverySingleBitHeaderError) {
  CellHeader h;
  h.vpi = 1;
  h.vci = 42;
  std::uint8_t raw[kCellHeaderLen];
  h.write(raw);
  for (std::size_t byte = 0; byte < kCellHeaderLen; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      raw[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_FALSE(CellHeader::parse(ByteView(raw, sizeof raw)).has_value())
          << "byte " << byte << " bit " << bit;
      raw[byte] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
}

TEST(Cell, ByteRoundTrip) {
  Cell c;
  c.header.vci = 77;
  c.header.set_end_of_message(true);
  util::Rng rng(1);
  rng.fill(c.payload);
  const Bytes wire = c.to_bytes();
  ASSERT_EQ(wire.size(), kCellLen);
  const auto back = Cell::from_bytes(ByteView(wire));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->header.vci, 77);
  EXPECT_EQ(back->payload, c.payload);
}

TEST(SegmentPdu, MarksOnlyLastCell) {
  const CpcsPdu pdu = CpcsPdu::frame(ByteView(random_bytes(2, 296)));
  const auto cells = segment_pdu(pdu, 0, 32);
  ASSERT_EQ(cells.size(), pdu.num_cells());
  for (std::size_t i = 0; i < cells.size(); ++i)
    EXPECT_EQ(cells[i].header.end_of_message(), i + 1 == cells.size());
}

TEST(Reassembler, LosslessStreamReassemblesEveryPdu) {
  Reassembler r;
  util::Rng rng(3);
  for (int p = 0; p < 20; ++p) {
    const Bytes payload =
        random_bytes(static_cast<std::uint64_t>(p), 40 + rng.below(400));
    const CpcsPdu pdu = CpcsPdu::frame(ByteView(payload));
    const auto cells = segment_pdu(pdu, 0, 32);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto result = r.push(cells[i]);
      if (i + 1 < cells.size()) {
        EXPECT_FALSE(result.has_value());
      } else {
        ASSERT_TRUE(result.has_value());
        EXPECT_TRUE(result->length_ok);
        EXPECT_TRUE(result->crc_ok);
        EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                               result->bytes.begin()));
      }
    }
  }
  EXPECT_EQ(r.pending_cells(), 0u);
}

TEST(Reassembler, LostEomFusesPackets) {
  // Drop packet 1's EOM: the reassembler fuses the packets into one
  // candidate PDU, which the length check rejects.
  const CpcsPdu p1 = CpcsPdu::frame(ByteView(random_bytes(4, 296)));
  const CpcsPdu p2 = CpcsPdu::frame(ByteView(random_bytes(5, 296)));
  Reassembler r;
  const auto c1 = segment_pdu(p1, 0, 32);
  const auto c2 = segment_pdu(p2, 0, 32);
  for (std::size_t i = 0; i + 1 < c1.size(); ++i) EXPECT_FALSE(r.push(c1[i]));
  std::optional<Reassembler::Pdu> done;
  for (const auto& c : c2) {
    ASSERT_FALSE(done.has_value());
    done = r.push(c);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_FALSE(done->length_ok);  // 13 cells vs 296-byte length field
}

TEST(Reassembler, ExhaustiveDropPatternsMatchSpliceEnumerator) {
  // THE state-machine validation: for a two-packet stream, every drop
  // pattern that yields a length-consistent fused PDU containing >= 1
  // packet-1 cell corresponds to exactly one enumerated SpliceSpec,
  // and vice versa.
  const CpcsPdu p1 = CpcsPdu::frame(ByteView(random_bytes(6, 150)));  // 4 cells
  const CpcsPdu p2 = CpcsPdu::frame(ByteView(random_bytes(7, 150)));
  ASSERT_EQ(p1.num_cells(), 4u);
  const auto c1 = segment_pdu(p1, 0, 32);
  const auto c2 = segment_pdu(p2, 0, 32);

  // All splices the enumerator lists, keyed by the fused PDU's bytes.
  std::set<Bytes> enumerated;
  for_each_splice(4, 4, [&](const SpliceSpec& s) {
    enumerated.insert(materialize_splice(p1, p2, s));
  });
  EXPECT_EQ(enumerated.size(), splice_count(4, 4));

  // All drop patterns over the 8 cells.
  std::set<Bytes> from_state_machine;
  for (unsigned pattern = 0; pattern < (1u << 8); ++pattern) {
    Reassembler r;
    std::optional<Reassembler::Pdu> first_done;
    for (unsigned i = 0; i < 8; ++i) {
      if (pattern & (1u << i)) continue;  // dropped
      const Cell& cell = i < 4 ? c1[i] : c2[i - 4];
      auto done = r.push(cell);
      if (done && !first_done) first_done = std::move(done);
    }
    if (!first_done || !first_done->length_ok) continue;
    // A fused PDU (not pure packet 2, not intact packet 1).
    const Bytes& bytes = first_done->bytes;
    const bool is_p1 = bytes.size() == p1.bytes().size() &&
                       std::equal(bytes.begin(), bytes.end(),
                                  p1.bytes().begin());
    const bool uses_p1_prefix =
        (pattern & 0x0f) != 0x0f;  // at least one p1 cell survived
    const bool ends_with_p2_eom = (pattern & 0x80) == 0;
    if (is_p1 || !uses_p1_prefix || !ends_with_p2_eom) continue;
    from_state_machine.insert(bytes);
  }

  // Distinct-content check: every state-machine splice is enumerated.
  for (const Bytes& b : from_state_machine)
    EXPECT_TRUE(enumerated.count(b) > 0) << "state machine produced a "
                                            "splice the enumerator missed";
  // And the enumerator produces nothing the state machine can't.
  for (const Bytes& b : enumerated)
    EXPECT_TRUE(from_state_machine.count(b) > 0)
        << "enumerator lists an unreachable splice";
}

TEST(Reassembler, OversizeDiscard) {
  Reassembler r;
  Cell filler;
  filler.header.set_end_of_message(false);
  // Push far more than the max PDU size without an EOM.
  const std::size_t cells_needed = (65535 + 8) / kCellPayload + 10;
  for (std::size_t i = 0; i < cells_needed; ++i) EXPECT_FALSE(r.push(filler));
  EXPECT_GE(r.oversize_discards(), 1u);
}

TEST(LossModel, ZeroRateIsLossless) {
  const CpcsPdu pdu = CpcsPdu::frame(ByteView(random_bytes(8, 500)));
  const auto cells = segment_pdu(pdu, 0, 32);
  LossConfig cfg;
  cfg.cell_loss_rate = 0.0;
  util::Rng rng(9);
  LossStats stats;
  const auto out = transmit(cells, cfg, rng, &stats);
  EXPECT_EQ(out.size(), cells.size());
  EXPECT_EQ(stats.cells_lost, 0u);
}

TEST(LossModel, RateApproximatelyHonoured) {
  std::vector<Cell> stream(20000);
  for (std::size_t i = 0; i < stream.size(); ++i)
    stream[i].header.set_end_of_message(i % 7 == 6);
  LossConfig cfg;
  cfg.cell_loss_rate = 0.05;
  util::Rng rng(10);
  LossStats stats;
  (void)transmit(stream, cfg, rng, &stats);
  EXPECT_NEAR(static_cast<double>(stats.cells_lost) / 20000.0, 0.05, 0.01);
}

TEST(LossModel, BurstsAreLongerThanIndependentLosses) {
  std::vector<Cell> stream(50000);
  for (std::size_t i = 0; i < stream.size(); ++i)
    stream[i].header.set_end_of_message(i % 7 == 6);
  LossConfig indep;
  indep.cell_loss_rate = 0.02;
  LossConfig bursty = indep;
  bursty.burst_continue = 0.8;
  util::Rng r1(11), r2(11);
  LossStats s1, s2;
  (void)transmit(stream, indep, r1, &s1);
  (void)transmit(stream, bursty, r2, &s2);
  EXPECT_GT(s2.cells_lost, 2 * s1.cells_lost);
}

TEST(LossModel, PpdDropsTailIncludingEom) {
  // One PDU of 7 cells; force a loss on cell 2 by rate ~1 on exactly
  // one trial... instead run many trials and check the invariant: in
  // any PDU with losses under PPD, no cell after the first loss
  // survives.
  const CpcsPdu pdu = CpcsPdu::frame(ByteView(random_bytes(12, 296)));
  std::vector<Cell> stream;
  for (int p = 0; p < 50; ++p) {
    const auto cells = segment_pdu(pdu, 0, 32);
    stream.insert(stream.end(), cells.begin(), cells.end());
  }
  LossConfig cfg;
  cfg.cell_loss_rate = 0.05;
  cfg.policy = DiscardPolicy::kPartialPacketDiscard;
  util::Rng rng(13);
  const auto out = transmit(stream, cfg, rng, &stats_sink());
  // Under PPD every surviving run within a PDU is a prefix, and an EOM
  // only survives when its whole PDU did. Orphaned prefixes fuse with
  // the next intact PDU, making a candidate with MORE cells than its
  // length field allows — "a detectably incorrect packet length" (§7).
  // Invariant: a completed PDU that passes the length check is an
  // intact original; no checksum-exercising splice can form.
  Reassembler r;
  std::size_t delivered = 0, length_rejected = 0;
  for (const auto& c : out) {
    const auto done = r.push(c);
    if (!done) continue;
    if (done->length_ok) {
      ++delivered;
      EXPECT_TRUE(done->crc_ok);
      EXPECT_TRUE(std::equal(pdu.payload().begin(), pdu.payload().end(),
                             done->bytes.begin()));
    } else {
      ++length_rejected;
    }
  }
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(length_rejected, 0u);  // the fusions PPD renders harmless
}

TEST(LossModel, EpdNeverDeliversPartialPdus) {
  const CpcsPdu pdu = CpcsPdu::frame(ByteView(random_bytes(14, 296)));
  std::vector<Cell> stream;
  for (int p = 0; p < 200; ++p) {
    const auto cells = segment_pdu(pdu, 0, 32);
    stream.insert(stream.end(), cells.begin(), cells.end());
  }
  LossConfig cfg;
  cfg.cell_loss_rate = 0.05;
  cfg.policy = DiscardPolicy::kEarlyPacketDiscard;
  util::Rng rng(15);
  const auto out = transmit(stream, cfg, rng, &stats_sink());
  EXPECT_EQ(out.size() % pdu.num_cells(), 0u);
  Reassembler r;
  std::size_t delivered = 0;
  for (const auto& c : out) {
    const auto done = r.push(c);
    if (done) {
      ++delivered;
      EXPECT_TRUE(done->length_ok);
      EXPECT_TRUE(done->crc_ok);
    }
  }
  EXPECT_GT(delivered, 0u);
  EXPECT_LT(delivered, 200u);  // some whole PDUs were discarded
}


TEST(VcDemux, InterleavedChannelsReassembleIndependently) {
  // Three VCs, cells round-robin interleaved on the link: each
  // channel's PDUs must come out intact, untouched by the others.
  VcDemux demux;
  struct Stream {
    std::uint16_t vci;
    Bytes payload;
    std::vector<Cell> cells;
  };
  std::vector<Stream> streams;
  for (std::uint16_t v = 0; v < 3; ++v) {
    Stream s;
    s.vci = static_cast<std::uint16_t>(32 + v);
    s.payload = random_bytes(40 + v, 200 + v * 96);
    s.cells = segment_pdu(CpcsPdu::frame(ByteView(s.payload)), 0, s.vci);
    streams.push_back(std::move(s));
  }
  std::size_t delivered = 0;
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (auto& s : streams) {
      if (i >= s.cells.size()) continue;
      any = true;
      const auto out = demux.push(s.cells[i]);
      if (out) {
        ++delivered;
        EXPECT_EQ(out->vci, s.vci);
        EXPECT_TRUE(out->pdu.length_ok);
        EXPECT_TRUE(out->pdu.crc_ok);
        EXPECT_TRUE(std::equal(s.payload.begin(), s.payload.end(),
                               out->pdu.bytes.begin()));
      }
    }
    if (!any) break;
  }
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(demux.channel_count(), 3u);
  EXPECT_EQ(demux.pending_cells(), 0u);
}

TEST(VcDemux, CrossVcLossDoesNotContaminate) {
  // Dropping the EOM on one channel must not corrupt another channel
  // interleaved with it — the failure stays within its VC.
  VcDemux demux;
  const Bytes pa = random_bytes(50, 296);
  const Bytes pb = random_bytes(51, 296);
  const auto ca = segment_pdu(CpcsPdu::frame(ByteView(pa)), 0, 100);
  const auto cb = segment_pdu(CpcsPdu::frame(ByteView(pb)), 0, 200);
  std::size_t b_delivered = 0;
  for (std::size_t i = 0; i < 7; ++i) {
    if (i + 1 < 7) (void)demux.push(ca[i]);  // drop channel A's EOM
    const auto out = demux.push(cb[i]);
    if (out) {
      ++b_delivered;
      EXPECT_EQ(out->vci, 200);
      EXPECT_TRUE(out->pdu.crc_ok);
    }
  }
  EXPECT_EQ(b_delivered, 1u);
  EXPECT_GT(demux.pending_cells(), 0u);  // channel A stuck mid-PDU
  demux.reset_channel(0, 100);
  EXPECT_EQ(demux.pending_cells(), 0u);
}

}  // namespace
}  // namespace cksum::atm
