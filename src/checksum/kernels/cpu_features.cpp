#include "checksum/kernels/cpu_features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#elif defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#endif

namespace cksum::alg::kern::impl {

namespace {

bool probe_clmul() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  // The kernel needs PCLMULQDQ for the folds and SSE4.1 for the lane
  // extracts in the final reduction.
  constexpr unsigned kPclmulqdq = 1u << 1;
  constexpr unsigned kSse41 = 1u << 19;
  return (ecx & kPclmulqdq) != 0 && (ecx & kSse41) != 0;
#elif defined(__aarch64__) && defined(__linux__)
#ifdef HWCAP_PMULL
  constexpr unsigned long kPmull = HWCAP_PMULL;
#else
  constexpr unsigned long kPmull = 1ul << 4;
#endif
  return (getauxval(AT_HWCAP) & kPmull) != 0;
#else
  return false;
#endif
}

}  // namespace

bool cpu_has_clmul() noexcept {
  static const bool has = probe_clmul();
  return has;
}

}  // namespace cksum::alg::kern::impl
