#include "checksum/kernels/kernel.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "checksum/kernels/impl.hpp"
#include "obs/registry.hpp"

namespace cksum::alg::kern {

namespace {

constexpr Kernel kKernels[] = {
    {"scalar",
     "reference: byte/word-at-a-time with immediate modular reduction",
     0,
     impl::scalar_internet_sum,
     impl::scalar_fletcher,
     impl::scalar_fletcher32,
     impl::scalar_adler32,
     impl::scalar_crc32,
     impl::scalar_koopman_dual,
     impl::scalar_koopman_single},
    {"slicing",
     "slicing-by-8 CRC-32; blocked Fletcher/Adler with deferred reduction",
     1,
     impl::slicing_internet_sum,
     impl::slicing_fletcher,
     impl::slicing_fletcher32,
     impl::slicing_adler32,
     impl::slicing_crc32,
     impl::slicing_koopman_dual,
     impl::slicing_koopman_single},
    {"swar",
     "slicing integer kernels plus 64-bit SWAR Internet sum",
     2,
     impl::swar_internet_sum,
     impl::slicing_fletcher,
     impl::slicing_fletcher32,
     impl::slicing_adler32,
     impl::slicing_crc32,
     impl::slicing_koopman_dual,
     impl::slicing_koopman_single},
    // The two fast-CRC tiers only change crc32: the other algorithms
    // keep swar's Internet sum and slicing's blocked modular sums
    // (including the lane-folded Koopman sums), so stepping up a tier
    // never slows a non-CRC path down.
    {"chorba",
     "tableless CRC-32 via sparse polynomial convolution (arXiv 2412.16398)",
     3,
     impl::swar_internet_sum,
     impl::slicing_fletcher,
     impl::slicing_fletcher32,
     impl::slicing_adler32,
     impl::chorba_crc32,
     impl::slicing_koopman_dual,
     impl::slicing_koopman_single},
    {"clmul",
     "carry-less-multiply folding CRC-32 (PCLMULQDQ/PMULL, 64-byte stripes)",
     4,
     impl::swar_internet_sum,
     impl::slicing_fletcher,
     impl::slicing_fletcher32,
     impl::slicing_adler32,
     impl::clmul_crc32,
     impl::slicing_koopman_dual,
     impl::slicing_koopman_single,
     impl::clmul_unavailable},
};

constexpr int kNumKernels = static_cast<int>(std::size(kKernels));

bool available(int idx) noexcept {
  const Kernel& k = kKernels[idx];
  return k.unavailable == nullptr || k.unavailable() == nullptr;
}

int best_index() noexcept {
  int best = 0;  // scalar: always available by construction
  for (int i = 1; i < kNumKernels; ++i)
    if (available(i) && kKernels[i].tier > kKernels[best].tier) best = i;
  return best;
}

int index_of(std::string_view name) noexcept {
  if (name == "best") return best_index();
  for (int i = 0; i < kNumKernels; ++i)
    if (kKernels[i].name == name) return i;
  return -1;
}

/// Why g_active holds what it holds — drives
/// kernel_selection_reason() and the manifest "kernel_reason" member.
enum class Source : int {
  kDefaultBest = 0,  ///< nothing asked; "best" resolved per machine
  kEnv,              ///< CKSUM_KERNEL named a usable kernel
  kEnvFallback,      ///< CKSUM_KERNEL named something unusable
  kExplicit,         ///< select_kernel() (--kernel flag) picked it
};

/// Selected kernel index; -1 until the first dispatch (or explicit
/// select_kernel) resolves the CKSUM_KERNEL environment variable.
std::atomic<int> g_active{-1};
std::atomic<int> g_source{static_cast<int>(Source::kDefaultBest)};

int active_index() noexcept {
  int idx = g_active.load(std::memory_order_relaxed);
  if (idx >= 0) return idx;
  const char* env = std::getenv(kKernelEnv);
  Source src = Source::kDefaultBest;
  idx = -1;
  if (env != nullptr) {
    idx = index_of(env);
    if (idx >= 0 && !available(idx)) idx = -1;
    src = idx >= 0 ? Source::kEnv : Source::kEnvFallback;
  }
  if (idx < 0) idx = best_index();
  // Lost race: another thread resolved first; both wrote a valid index
  // derived from the same environment, so either winner is fine (and
  // the source annotation travels with the winning store).
  int expected = -1;
  if (g_active.compare_exchange_strong(expected, idx,
                                       std::memory_order_relaxed))
    g_source.store(static_cast<int>(src), std::memory_order_relaxed);
  return g_active.load(std::memory_order_relaxed);
}

#ifndef OBS_DISABLE

/// Per-kernel dispatch counters. The split of work across kernels is a
/// property of this run's configuration (like thread count), not of
/// the corpus, so the counters are tagged kScheduling and stay out of
/// cross-kernel determinism diffs.
///
/// Dispatch itself never touches these handles: counts accumulate in
/// per-thread PendingShard cells (plain relaxed stores, single
/// writer) and reach snapshots through an obs::SnapshotSource that
/// sums the shards on demand — so a flood of sub-64-byte frames costs
/// two uncontended stores per call, not registry traffic.
struct KernelCounters {
  obs::Counter calls;
  obs::Counter bytes;
};

struct PendingShard {
  std::atomic<std::uint64_t> calls[kNumKernels]{};
  std::atomic<std::uint64_t> bytes[kNumKernels]{};
};

/// Shards outlive their threads (a snapshot may run after a worker
/// exits), so they are heap-allocated and tracked forever, mirroring
/// obs::Registry's own shard list.
struct PendingState {
  std::mutex mu;
  std::vector<PendingShard*> shards;
  /// Totals as of the last Registry::reset(), subtracted on collect
  /// so reset() semantics hold without zeroing live shards.
  std::uint64_t base_calls[kNumKernels]{};
  std::uint64_t base_bytes[kNumKernels]{};
};

PendingState& pending_state() {
  static PendingState* s = new PendingState;  // leak: outlives exit order
  return *s;
}

void pending_totals(PendingState& st, std::uint64_t (&calls)[kNumKernels],
                    std::uint64_t (&bytes)[kNumKernels]) {
  for (int i = 0; i < kNumKernels; ++i) {
    calls[i] = 0;
    bytes[i] = 0;
    for (const PendingShard* sh : st.shards) {
      calls[i] += sh->calls[i].load(std::memory_order_relaxed);
      bytes[i] += sh->bytes[i].load(std::memory_order_relaxed);
    }
  }
}

std::vector<std::pair<std::string, std::uint64_t>> collect_pending() {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(2 * kNumKernels);
  PendingState& st = pending_state();
  std::lock_guard<std::mutex> lock(st.mu);
  std::uint64_t calls[kNumKernels], bytes[kNumKernels];
  pending_totals(st, calls, bytes);
  for (int i = 0; i < kNumKernels; ++i) {
    const std::string prefix = "kernel." + std::string(kKernels[i].name);
    out.emplace_back(prefix + ".calls", calls[i] - st.base_calls[i]);
    out.emplace_back(prefix + ".bytes", bytes[i] - st.base_bytes[i]);
  }
  return out;
}

void reset_pending() {
  {
    PendingState& st = pending_state();
    std::lock_guard<std::mutex> lock(st.mu);
    pending_totals(st, st.base_calls, st.base_bytes);
  }
  // Registry::reset() zeroed every slot, including the availability
  // gauges — re-assert them, since availability is a machine fact
  // that survives a metrics epoch.
  auto& reg = obs::Registry::global();
  for (int i = 0; i < kNumKernels; ++i)
    reg.gauge("kernel." + std::string(kKernels[i].name) + ".available",
              obs::Tag::kScheduling)
        .add(available(i) ? 1 : 0);
}

/// Registers the kernel.* families (zero-valued counters so manifests
/// carry the full family, 0/1 availability gauges) and hooks the
/// pending shards into snapshots. Once per process.
std::array<KernelCounters, kNumKernels>& counters() {
  static std::array<KernelCounters, kNumKernels> handles = [] {
    std::array<KernelCounters, kNumKernels> out;
    auto& reg = obs::Registry::global();
    for (int i = 0; i < kNumKernels; ++i) {
      const std::string prefix = "kernel." + std::string(kKernels[i].name);
      out[static_cast<std::size_t>(i)].calls =
          reg.counter(prefix + ".calls", obs::Tag::kScheduling);
      out[static_cast<std::size_t>(i)].bytes =
          reg.counter(prefix + ".bytes", obs::Tag::kScheduling);
      reg.gauge(prefix + ".available", obs::Tag::kScheduling)
          .add(available(i) ? 1 : 0);
    }
    reg.add_snapshot_source({collect_pending, reset_pending});
    return out;
  }();
  return handles;
}

PendingShard& pending() {
  thread_local PendingShard* shard = [] {
    counters();  // keep the lazy family/source registration contract
    auto* s = new PendingShard();
    PendingState& st = pending_state();
    std::lock_guard<std::mutex> lock(st.mu);
    st.shards.push_back(s);
    return s;
  }();
  return *shard;
}

#endif  // OBS_DISABLE

/// The active kernel, with the call and its byte count recorded.
const Kernel& dispatch(std::size_t bytes) noexcept {
  const int idx = active_index();
#ifndef OBS_DISABLE
  PendingShard& sh = pending();
  auto& c = sh.calls[idx];
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  auto& b = sh.bytes[idx];
  b.store(b.load(std::memory_order_relaxed) + bytes,
          std::memory_order_relaxed);
#else
  (void)bytes;
#endif
  return kKernels[idx];
}

}  // namespace

std::span<const Kernel> kernels() noexcept { return kKernels; }

const Kernel* find_kernel(std::string_view name) noexcept {
  const int idx = index_of(name);
  return idx >= 0 ? &kKernels[idx] : nullptr;
}

bool kernel_available(const Kernel& k) noexcept {
  return k.unavailable == nullptr || k.unavailable() == nullptr;
}

const char* kernel_unavailable_reason(const Kernel& k) noexcept {
  return k.unavailable == nullptr ? nullptr : k.unavailable();
}

const Kernel& scalar_kernel() noexcept { return kKernels[0]; }

const Kernel& active_kernel() noexcept { return kKernels[active_index()]; }

bool select_kernel(std::string_view name) noexcept {
  const int idx = index_of(name);
  if (idx < 0 || !available(idx)) return false;
  g_active.store(idx, std::memory_order_relaxed);
  g_source.store(static_cast<int>(Source::kExplicit),
                 std::memory_order_relaxed);
  return true;
}

std::string kernel_selection_reason() {
  const Kernel& k = active_kernel();  // forces resolution (and source)
  switch (static_cast<Source>(g_source.load(std::memory_order_relaxed))) {
    case Source::kExplicit:
      return "explicit selection (--kernel / select_kernel)";
    case Source::kEnv:
      return std::string(kKernelEnv) + " environment selection";
    case Source::kEnvFallback: {
      const char* env = std::getenv(kKernelEnv);
      return std::string(kKernelEnv) + "=" +
             std::string(env != nullptr ? env : "?") +
             " is not selectable on this machine; fell back to best";
    }
    case Source::kDefaultBest:
      break;
  }
  std::string reason = "best: highest tier available on this machine";
  for (const Kernel& other : kernels()) {
    if (other.tier <= k.tier) continue;
    const char* why = kernel_unavailable_reason(other);
    reason += "; " + std::string(other.name) +
              " unavailable: " + (why != nullptr ? why : "?");
  }
  return reason;
}

void register_kernel_metrics() {
#ifndef OBS_DISABLE
  counters();
#endif
}

std::uint16_t internet_sum(util::ByteView data) noexcept {
  return dispatch(data.size()).internet_sum(data);
}

std::uint16_t internet_checksum(util::ByteView data) noexcept {
  return static_cast<std::uint16_t>(~internet_sum(data));
}

FletcherPair fletcher_block(util::ByteView data, FletcherMod mod) noexcept {
  return dispatch(data.size()).fletcher(data, mod);
}

Fletcher32Pair fletcher32_block(util::ByteView data) noexcept {
  return dispatch(data.size()).fletcher32(data);
}

std::uint32_t adler32(std::uint32_t adler, util::ByteView data) noexcept {
  return dispatch(data.size()).adler32(adler, data);
}

std::uint32_t crc32(std::uint32_t crc, util::ByteView data) noexcept {
  return dispatch(data.size()).crc32(crc, data);
}

KoopmanDualPair koopman_dual(util::ByteView data) noexcept {
  return dispatch(data.size()).koopman_dual(data);
}

std::uint64_t koopman_single(util::ByteView data) noexcept {
  return dispatch(data.size()).koopman_single(data);
}

}  // namespace cksum::alg::kern
