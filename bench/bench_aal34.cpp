// AAL3/4 vs AAL5 under the same lossy link: the per-cell sequence
// numbers AAL5 dropped make fused PDUs (splices) structurally
// impossible — every loss event aborts the current PDU instead of
// silently merging two. The price is 4 bytes of every 48 (8.3 % of
// goodput) plus a weaker per-cell CRC-10 in place of AAL5's per-packet
// CRC-32: the design trade the paper's error model interrogates.
#include <cstdio>
#include <set>
#include <iostream>

#include "atm/aal34.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "util/hash.hpp"

using namespace cksum;

namespace {

struct Aal34Result {
  std::uint64_t cells_in = 0;
  std::uint64_t cells_lost = 0;
  std::uint64_t delivered_intact = 0;
  std::uint64_t delivered_fused = 0;  // must stay zero
  std::uint64_t aborted = 0;
  std::uint64_t seq_violations = 0;
};

Aal34Result run(double loss_rate, double burst, double scale) {
  const fsgen::Filesystem fs(fsgen::profile("sics.se:/opt"), 0.5 * scale);
  const net::FlowConfig flow = core::paper_flow_config();
  util::Rng rng(0x34);

  Aal34Result out;
  for (std::size_t f = 0; f < fs.file_count(); ++f) {
    const util::Bytes file = fs.file(f);
    const auto pkts = net::segment_file(flow, util::ByteView(file));

    std::set<std::uint64_t> good;
    std::vector<atm::Sar34Cell> stream;
    std::uint8_t sn = 0;
    for (const auto& p : pkts) {
      good.insert(util::hash64(p.ip_bytes()));
      auto cells = atm::aal34_segment(p.ip_bytes(), 42, sn);
      sn = static_cast<std::uint8_t>((sn + cells.size()) & 0xf);
      stream.insert(stream.end(), cells.begin(), cells.end());
    }
    out.cells_in += stream.size();

    // Bursty loss, same process as atm::transmit's first pass.
    atm::Aal34Reassembler reasm;
    bool in_burst = false;
    for (const auto& cell : stream) {
      bool lost = false;
      if (in_burst) {
        lost = true;
        in_burst = rng.chance(burst);
      } else if (rng.chance(loss_rate)) {
        lost = true;
        in_burst = rng.chance(burst);
      }
      if (lost) {
        ++out.cells_lost;
        continue;
      }
      const auto done = reasm.push(cell);
      if (done && done->complete) {
        if (good.count(util::hash64(util::ByteView(done->bytes))) > 0) {
          ++out.delivered_intact;
        } else {
          ++out.delivered_fused;
        }
      }
    }
    out.aborted += reasm.aborted_pdus();
    out.seq_violations += reasm.sequence_violations();
  }
  return out;
}

}  // namespace

int main() {
  const double scale = core::scale_from_env();
  std::printf(
      "== AAL3/4 under cell loss: the splice-immune baseline ==\n"
      "(same corpus and loss process as bench_lossmodel)\n\n");
  core::TextTable t({"loss rate", "cells", "lost", "intact PDUs",
                     "aborted PDUs", "seq violations", "FUSED PDUs"});
  for (const double rate : {0.001, 0.01, 0.05}) {
    const Aal34Result r = run(rate, 0.5, scale);
    char label[16];
    std::snprintf(label, sizeof label, "%.1f%%", 100 * rate);
    t.add_row({label, core::fmt_count(r.cells_in),
               core::fmt_count(r.cells_lost),
               core::fmt_count(r.delivered_intact),
               core::fmt_count(r.aborted),
               core::fmt_count(r.seq_violations),
               core::fmt_count(r.delivered_fused)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: FUSED PDUs is zero at every loss rate — the 4-bit\n"
      "sequence number catches every in-order drop shorter than 16 cells,\n"
      "so AAL3/4 never needs the transport checksum to catch a splice.\n"
      "AAL5 bought 8.3%% more goodput by removing that field; this paper's\n"
      "splice analysis is the bill.\n");
  return 0;
}
