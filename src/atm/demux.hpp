// Per-VC demultiplexing: a real ATM link interleaves cells of many
// virtual channels; AAL5 reassembly state is per-VC. The demux routes
// each cell to its channel's reassembler (creating state on first
// sight), discards cells whose HEC failed upstream, and surfaces
// completed candidate PDUs tagged with their VC.
//
// A hostile or faulty stream can try to exhaust the receiver two ways:
// spraying cells across unbounded VCIs (per-channel state), or opening
// PDUs whose EOM never arrives (pending-cell buffers). The demux
// therefore degrades gracefully instead of growing without bound:
//
//  * a max-channel cap with idle-channel eviction — when a cell for a
//    new VC arrives at the cap, the least-recently-used channel's
//    state is discarded;
//  * a global pending-cell budget — once the total buffered cells
//    reach it, non-EOM cells are dropped (EOM cells still pass so
//    stuck PDUs can complete and drain the buffers).
//
// Both degradations are counted; dropped cells surface downstream as
// ordinary splices/truncations that the AAL5 length and CRC checks
// catch. Defaults are generous enough that well-behaved streams never
// notice the limits.
#pragma once

#include <map>
#include <optional>

#include "atm/reassembler.hpp"

namespace cksum::atm {

/// Idempotently register the demux.* and reasm.* metric families with
/// obs::Registry::global() (see docs/OBSERVABILITY.md).
void register_atm_metrics();

struct DemuxLimits {
  /// Max VCs with live reassembly state before LRU eviction kicks in.
  std::size_t max_channels = 65536;
  /// Max cells buffered across all channels before non-EOM cells are
  /// shed.
  std::size_t max_pending_cells = std::size_t{1} << 22;
};

struct DemuxStats {
  std::uint64_t deliveries = 0;    ///< completed candidate PDUs surfaced
  std::uint64_t budget_drops = 0;  ///< cells shed over the pending budget
  std::uint64_t evictions = 0;     ///< idle channels evicted at the cap
};

class VcDemux {
 public:
  struct Delivery {
    std::uint8_t vpi = 0;
    std::uint16_t vci = 0;
    Reassembler::Pdu pdu;
  };

  VcDemux() = default;
  explicit VcDemux(const DemuxLimits& limits) : limits_(limits) {}

  /// Feed one cell; returns a completed PDU when this cell ends one.
  std::optional<Delivery> push(const Cell& cell);

  /// Number of channels with reassembly state.
  std::size_t channel_count() const noexcept { return channels_.size(); }

  /// Cells buffered across all channels (diagnosing stuck partial
  /// reassemblies after EOM loss). O(1): tracked incrementally.
  std::size_t pending_cells() const noexcept { return pending_; }

  /// Drop a channel's partial state (e.g. on VC teardown).
  void reset_channel(std::uint8_t vpi, std::uint16_t vci);

  const DemuxLimits& limits() const noexcept { return limits_; }
  const DemuxStats& stats() const noexcept { return stats_; }

  /// Sum of per-channel oversize-PDU discards (EOM lost so long ago
  /// the buffer outgrew the max CPCS-PDU size).
  std::uint64_t oversize_discards() const noexcept;

 private:
  using Key = std::pair<std::uint8_t, std::uint16_t>;
  struct Channel {
    Reassembler reasm;
    std::uint64_t last_used = 0;
  };

  void evict_idlest();

  std::map<Key, Channel> channels_;
  DemuxLimits limits_{};
  DemuxStats stats_{};
  std::uint64_t tick_ = 0;
  std::size_t pending_ = 0;
};

}  // namespace cksum::atm
