#include "atm/demux.hpp"

namespace cksum::atm {

std::optional<VcDemux::Delivery> VcDemux::push(const Cell& cell) {
  ++tick_;
  const Key key{cell.header.vpi, cell.header.vci};
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    if (channels_.size() >= limits_.max_channels && !channels_.empty())
      evict_idlest();
    it = channels_.emplace(key, Channel{}).first;
  }
  it->second.last_used = tick_;

  // Pending budget: shed non-EOM cells once the global buffer is full.
  // EOM cells still pass — they always complete (and thus drain) their
  // channel's PDU, so admitting them only ever reduces pending state.
  if (!cell.header.end_of_message() &&
      pending_ >= limits_.max_pending_cells) {
    ++stats_.budget_drops;
    return std::nullopt;
  }

  Reassembler& reasm = it->second.reasm;
  const std::size_t before = reasm.pending_cells();
  auto done = reasm.push(cell);
  pending_ -= before;
  pending_ += reasm.pending_cells();

  if (!done) return std::nullopt;
  ++stats_.deliveries;
  Delivery d;
  d.vpi = cell.header.vpi;
  d.vci = cell.header.vci;
  d.pdu = std::move(*done);
  return d;
}

void VcDemux::evict_idlest() {
  auto victim = channels_.begin();
  for (auto it = std::next(victim); it != channels_.end(); ++it) {
    if (it->second.last_used < victim->second.last_used) victim = it;
  }
  pending_ -= victim->second.reasm.pending_cells();
  ++stats_.evictions;
  channels_.erase(victim);
}

void VcDemux::reset_channel(std::uint8_t vpi, std::uint16_t vci) {
  const auto it = channels_.find(Key{vpi, vci});
  if (it == channels_.end()) return;
  pending_ -= it->second.reasm.pending_cells();
  it->second.reasm.reset();
}

std::uint64_t VcDemux::oversize_discards() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [key, ch] : channels_) total += ch.reasm.oversize_discards();
  return total;
}

}  // namespace cksum::atm
