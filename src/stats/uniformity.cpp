#include "stats/uniformity.hpp"

#include <cmath>
#include <stdexcept>

namespace cksum::stats {

namespace {

/// ln Γ(x) via the Lanczos approximation (g = 7, n = 9 coefficients).
double lgamma_lanczos(double x) {
  static constexpr double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(std::numbers::pi / std::sin(std::numbers::pi * x)) -
           lgamma_lanczos(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * std::numbers::pi) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

/// Series expansion for P(a, x), valid for x < a + 1.
double gamma_p_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - lgamma_lanczos(a));
}

/// Continued fraction for Q(a, x), valid for x >= a + 1 (Lentz).
double gamma_q_cf(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - lgamma_lanczos(a)) * h;
}

}  // namespace

double gamma_p(double a, double x) {
  if (a <= 0.0) throw std::invalid_argument("gamma_p: a must be positive");
  if (x < 0.0) throw std::invalid_argument("gamma_p: x must be non-negative");
  if (x == 0.0) return 0.0;
  return (x < a + 1.0) ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  if (a <= 0.0) throw std::invalid_argument("gamma_q: a must be positive");
  if (x < 0.0) throw std::invalid_argument("gamma_q: x must be non-negative");
  if (x == 0.0) return 1.0;
  return (x < a + 1.0) ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double chi_square_sf(double stat, double dof) {
  if (stat <= 0.0) return 1.0;
  return gamma_q(dof / 2.0, stat / 2.0);
}

double uniformity_p_value(const Histogram& h, double min_expected) {
  const std::uint64_t total = h.total();
  const std::size_t bins = h.bins();
  if (total == 0 || bins < 2) return 1.0;

  const double expected_per_bin =
      static_cast<double>(total) / static_cast<double>(bins);

  if (expected_per_bin >= min_expected) {
    return chi_square_sf(h.chi_square_uniform(),
                         static_cast<double>(bins) - 1.0);
  }

  // Pool consecutive bins until the expected count per pooled bin is
  // adequate for the chi-square approximation.
  const auto pool = static_cast<std::size_t>(
      std::ceil(min_expected / expected_per_bin));
  const auto& counts = h.counts();
  double stat = 0.0;
  std::size_t groups = 0;
  std::size_t i = 0;
  while (i < bins) {
    const std::size_t end = std::min(bins, i + pool);
    if (bins - end != 0 && bins - end < pool) {
      // Avoid a short trailing group: extend this one to the end.
      std::uint64_t obs = 0;
      for (std::size_t j = i; j < bins; ++j) obs += counts[j];
      const double exp_count = expected_per_bin * static_cast<double>(bins - i);
      const double d = static_cast<double>(obs) - exp_count;
      stat += d * d / exp_count;
      ++groups;
      break;
    }
    std::uint64_t obs = 0;
    for (std::size_t j = i; j < end; ++j) obs += counts[j];
    const double exp_count = expected_per_bin * static_cast<double>(end - i);
    const double d = static_cast<double>(obs) - exp_count;
    stat += d * d / exp_count;
    ++groups;
    i = end;
  }
  if (groups < 2) return 1.0;
  return chi_square_sf(stat, static_cast<double>(groups) - 1.0);
}

}  // namespace cksum::stats
