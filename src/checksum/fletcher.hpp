// Fletcher's checksum, 8-bit flavour (as used by ISO TP4 and studied
// by the paper in both ones-complement (mod 255) and twos-complement
// (mod 256) arithmetic).
//
// Two running bytes are kept: A is the plain sum of the data bytes and
// B is the sum of each byte weighted by its position from the END of
// the message (last byte weight 1). Computing `A += d; B += A` left to
// right produces exactly that end-weighting. The check field is two
// bytes chosen so the received message satisfies A ≡ 0 and B ≡ 0
// ("sum-to-zero inversion", as the paper's implementation does).
//
// Block composition rule (paper §5.2): a block with local sums (a, b)
// ending `E` bytes before the end of the message contributes
// (a, b + E·a). This is what lets the splice simulator evaluate
// Fletcher over a splice from per-cell partial sums, and is the source
// of the "cell colouring" effect the paper analyses.
#pragma once

#include <cstdint>
#include <utility>

#include "util/bytes.hpp"

namespace cksum::alg {

/// Arithmetic flavour: ones-complement (mod 255, two zeros: 0x00 and
/// 0xFF are congruent) or twos-complement (mod 256).
enum class FletcherMod : std::uint32_t { kOnes255 = 255, kTwos256 = 256 };

constexpr std::uint32_t modulus(FletcherMod m) noexcept {
  return static_cast<std::uint32_t>(m);
}

/// The two Fletcher running sums, kept canonical (< modulus).
struct FletcherPair {
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  friend bool operator==(const FletcherPair&, const FletcherPair&) = default;
};

/// Pack (a, b) into the 16-bit value A<<8 | B (for histogramming).
constexpr std::uint16_t fletcher_value(FletcherPair p) noexcept {
  return static_cast<std::uint16_t>((p.a << 8) | p.b);
}

/// Compute (A, B) over a block, end-weighted within the block
/// (i.e. the block's last byte has weight 1).
FletcherPair fletcher_block(util::ByteView data, FletcherMod mod) noexcept;

/// Textbook per-byte-modulo implementation. Identical results to
/// fletcher_block(); kept as the baseline for the implementation-
/// efficiency point of Nakassis and Sklower (the paper's [6], [11]):
/// deferring the reduction is worth several-fold in throughput.
FletcherPair fletcher_block_naive(util::ByteView data,
                                  FletcherMod mod) noexcept;

/// Sums of the concatenation X ++ Y from the blocks' own sums.
/// Every byte of X gains |Y| extra weight in the B term.
FletcherPair fletcher_combine(FletcherPair x, FletcherPair y,
                              std::size_t y_len, FletcherMod mod) noexcept;

/// Contribution of a block to a message in which `tail_len` bytes
/// follow the block: (a, b + tail_len·a).
FletcherPair fletcher_shift(FletcherPair x, std::size_t tail_len,
                            FletcherMod mod) noexcept;

/// Incremental whole-message computation (A += d; B += A).
class FletcherSum {
 public:
  explicit FletcherSum(FletcherMod mod) noexcept : mod_(mod) {}

  void update(util::ByteView data) noexcept;
  FletcherPair pair() const noexcept;
  void reset() noexcept { a_ = b_ = 0; }

 private:
  FletcherMod mod_;
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};

/// Solve for the two check bytes X, Y to be stored at message indices
/// p, p+1 (message length L) so that the full message sums to zero in
/// both terms. `rest` is (A, B) over the full message with zeros at
/// the check positions; `u` = L - p is the from-end weight of X.
/// Returns {X, Y}, each canonical (< modulus).
std::pair<std::uint8_t, std::uint8_t> fletcher_check_bytes(
    FletcherPair rest, std::size_t u, FletcherMod mod) noexcept;

/// A received message is valid iff both sums are congruent to zero.
bool fletcher_verify(util::ByteView msg, FletcherMod mod) noexcept;

/// Whether a pair is congruent to zero (valid) under `mod`.
constexpr bool fletcher_is_zero(FletcherPair p) noexcept {
  return p.a == 0 && p.b == 0;
}

}  // namespace cksum::alg
