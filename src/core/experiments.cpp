#include "core/experiments.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <string>

namespace cksum::core {

net::FlowConfig paper_flow_config() {
  net::FlowConfig cfg;
  cfg.segment_size = 256;
  cfg.initial_seq = 1;
  cfg.initial_ip_id = 1;
  return cfg;
}

SpliceStats run_profile(const fsgen::FsProfile& prof,
                        const net::PacketConfig& pkt_cfg, double scale,
                        bool compress_files) {
  SpliceRunConfig cfg;
  cfg.flow = paper_flow_config();
  cfg.flow.packet = pkt_cfg;
  cfg.compress_files = compress_files;
  cfg.threads = 0;  // all cores; the merged statistics are order-independent
  const fsgen::Filesystem fs(prof, scale);
  return run_filesystem(cfg, fs);
}

CellStatsCollector collect_cell_stats(const fsgen::FsProfile& prof,
                                      double scale, CellStatsConfig cfg) {
  const fsgen::Filesystem fs(prof, scale);
  const unsigned threads = std::max(
      1u, std::min(std::thread::hardware_concurrency(),
                   static_cast<unsigned>(fs.file_count())));
  if (threads <= 1) {
    CellStatsCollector collector(std::move(cfg));
    for (std::size_t i = 0; i < fs.file_count(); ++i) {
      const util::Bytes file = fs.file(i);
      collector.add_file(util::ByteView(file));
    }
    return collector;
  }

  // Per-thread collectors merged at the end: every counter is
  // additive, so the result is identical to a sequential pass.
  std::vector<CellStatsCollector> partial(threads, CellStatsCollector(cfg));
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= fs.file_count()) return;
        const util::Bytes file = fs.file(i);
        partial[t].add_file(util::ByteView(file));
      }
    });
  }
  for (auto& th : pool) th.join();
  CellStatsCollector collector(std::move(cfg));
  for (const auto& p : partial) collector.merge(p);
  return collector;
}

double scale_from_env() {
  const char* env = std::getenv("CKSUMLAB_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

}  // namespace cksum::core
