// Tableless CRC-32 via sparse polynomial convolution ("Chorba",
// arXiv 2412.16398) — the fallback fast tier for machines without
// carry-less-multiply hardware.
//
// Adding any multiple of the generator G(x) = 0x104C11DB7 to the
// message polynomial leaves the CRC unchanged, so a message word can
// be *eliminated* by XOR-ing a suitably shifted copy of a multiple of
// G over the downstream bits. With the weight-6 multiple
//
//   M(x) = x^274 + x^93 + x^75 + x^19 + x^11 + 1
//
// (found by scripts/find_sparse_multiple.py; divisibility re-proven
// from scratch by tests/test_kernels.cpp's
// ChorbaSparseMultipleDividesGenerator), clearing the 64 bits at
// stream position 64*i re-injects them at tap distances
// D = 274 - e = {181, 199, 255, 263, 274} bits downstream — all
// within words i+2 .. i+5. The whole convolution therefore runs in
// five register-resident carry words with ten shift+XOR taps per
// eliminated word (two shift subexpressions shared), no lookup
// tables and no special hardware.
//
// Bit order: the CRC bit stream is reflected, so byte b at stream
// offset j contributes bits 8j..8j+7 LSB-first — exactly the layout
// of a little-endian 64-bit load. Word i's bit k is stream position
// 64i + k, shifts toward higher stream positions are plain `<<`, and
// the initial state XORs into the low 32 bits of word 0 (expressed
// below as the initial value of the first carry word).
//
// After the convolution only the last five words (plus pending
// carries) and any sub-word tail remain; they carry the entire
// residue and are finished bitwise from state 0 (a zero prefix is
// free: the zero state stays zero). Buffers shorter than the carry
// window skip the convolution entirely and run the same bitwise
// reference — honest about the tier's one weakness: it only beats
// slicing once the window is in play.
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "checksum/kernels/impl.hpp"

namespace cksum::alg::kern::impl {

namespace {

/// Reflected generator: x^32 term implicit, bit i = coeff of x^(32-i).
constexpr std::uint32_t kPolyReflected = 0xEDB88320u;

std::uint32_t bitwise_bytes(const std::uint8_t* p, std::size_t n,
                            std::uint32_t s) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    s ^= p[i];
    for (int b = 0; b < 8; ++b)
      s = (s >> 1) ^ ((s & 1u) != 0 ? kPolyReflected : 0u);
  }
  return s;
}

std::uint32_t bitwise_word(std::uint64_t w, std::uint32_t s) noexcept {
  for (int j = 0; j < 8; ++j) {
    s ^= static_cast<std::uint32_t>(w >> (8 * j)) & 0xFFu;
    for (int b = 0; b < 8; ++b)
      s = (s >> 1) ^ ((s & 1u) != 0 ? kPolyReflected : 0u);
  }
  return s;
}

std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t w;
    std::memcpy(&w, p, sizeof w);
    return w;
  } else {
    std::uint64_t w = 0;
    for (int i = 7; i >= 0; --i) w = (w << 8) | p[i];
    return w;
  }
}

}  // namespace

std::uint32_t chorba_crc32(std::uint32_t crc, util::ByteView data) noexcept {
  const std::uint8_t* p = data.data();
  const std::size_t n = data.size();
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  const std::size_t nw = n / 8;
  if (nw < 8)  // shorter than the carry window: bitwise reference
    return bitwise_bytes(p, n, c) ^ 0xFFFFFFFFu;

  // Convolution. Burying the initial state in the stream (word 0's
  // low 32 bits) is the same as seeding the first carry word with it.
  std::uint64_t c0 = c, c1 = 0, c2 = 0, c3 = 0, c4 = 0;
  std::size_t i = 0;
  for (; i + 6 <= nw; ++i) {
    const std::uint64_t w = load_le64(p + 8 * i) ^ c0;
    c0 = c1;
    c1 = c2;
    c2 = c3;
    c3 = c4;
    c4 = 0;
    // Taps of w land in words i+2 .. i+5, which after the window
    // shift above are carry indices 1..4. Each tap distance D splits
    // as (w << (D & 63)) into word i + D/64 and (w >> (64 - (D & 63)))
    // spilling into the next word.
    const std::uint64_t w7 = w << 7;    // shared: D=199 low, D=263 low
    const std::uint64_t w57 = w >> 57;  // shared: D=199, D=263 spills
    c1 ^= w << 53;                      // D=181 low half
    c2 ^= (w >> 11) ^ w7 ^ (w << 63);   // D=181 spill; 199, 255 low
    c3 ^= w57 ^ (w >> 1) ^ w7 ^ (w << 18);  // 199, 255 spills; 263, 274 low
    c4 ^= w57 ^ (w >> 46);              // D=263, 274 spills
  }

  // Exactly five full words remain; fold the pending carries into
  // them and finish bitwise from state 0 (zeros prefix is free).
  const std::uint64_t carries[5] = {c0, c1, c2, c3, c4};
  std::uint32_t s = 0;
  for (std::size_t j = 0; i < nw; ++i, ++j)
    s = bitwise_word(load_le64(p + 8 * i) ^ (j < 5 ? carries[j] : 0), s);
  s = bitwise_bytes(p + 8 * nw, n - 8 * nw, s);
  return s ^ 0xFFFFFFFFu;
}

}  // namespace cksum::alg::kern::impl
