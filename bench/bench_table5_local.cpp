// Table 5: Probability (%) of checksum match for substitutions of
// length k cells based on LOCAL data — globally congruent vs locally
// congruent (within 512 bytes) vs locally congruent excluding
// identical blocks. Over smeg:/u1.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

using namespace cksum;

int main() {
  const double scale = core::scale_from_env();
  core::CellStatsConfig cfg;
  cfg.ks = {1, 2, 3, 4, 5};
  cfg.local_window_bytes = 512;
  const auto stats = core::collect_cell_stats(
      fsgen::profile("smeg.stanford.edu:/u1"), scale, cfg);

  std::printf(
      "== Table 5: P[checksum match] (%%) for k-cell substitutions, local "
      "data (smeg:/u1) ==\n(window: 512 bytes; uniform expectation "
      "0.0015%% everywhere)\n\n");
  core::TextTable t({"Length k", "Globally congruent", "Locally congruent",
                     "Excluding identical"});
  for (std::size_t k = 1; k <= 5; ++k) {
    const double global = stats.tcp_blocks(k).match_probability();
    const auto& lc = stats.local(k);
    t.add_row({std::to_string(k), core::fmt_pct(global),
               core::fmt_pct(lc.p_congruent()),
               core::fmt_pct(lc.p_congruent_excluding_identical())});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper): Local >> Global; excluding identical "
      "lowers it but it stays far above uniform. Identical blocks are the "
      "dominant congruence source (20-40x).\n");
  return 0;
}
