// Minimal classic-pcap writer (LINKTYPE_RAW: packets are raw IP
// datagrams), so simulated transfers and splices can be inspected in
// Wireshark/tcpdump. Timestamps are synthetic (one packet per
// microsecond) — the simulator has no clock.
#pragma once

#include <cstdint>
#include <ostream>

#include "util/bytes.hpp"

namespace cksum::util {

class PcapWriter {
 public:
  /// Binds to an output stream and writes the global header.
  /// LINKTYPE_RAW (101): each record is a raw IPv4/IPv6 datagram.
  explicit PcapWriter(std::ostream& out);

  /// Append one datagram as a capture record.
  void write_packet(ByteView datagram);

  std::size_t packets_written() const noexcept { return count_; }

 private:
  std::ostream& out_;
  std::size_t count_ = 0;
};

}  // namespace cksum::util
