// Burst-error injection and the §2 detection-guarantee properties.
#include <gtest/gtest.h>

#include <bit>

#include "checksum/checksum.hpp"
#include "core/error_inject.hpp"
#include "util/rng.hpp"

namespace cksum::core {
namespace {

using util::ByteView;
using util::Bytes;

Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  Bytes b(n);
  util::Rng rng(seed);
  rng.fill(b);
  return b;
}

TEST(ErrorInject, BurstFlipsExactlyPatternBits) {
  Bytes data(8, 0);
  BurstSpec spec;
  spec.bit_offset = 3;
  spec.length_bits = 5;
  spec.pattern = 0b10011;  // window bits 0,1,4
  apply_burst(data, spec);
  // Bits 3,4 and 7 (MSB-first numbering) of byte 0.
  EXPECT_EQ(data[0], 0b00011001);
  for (std::size_t i = 1; i < data.size(); ++i) EXPECT_EQ(data[i], 0);
}

TEST(ErrorInject, ApplyTwiceRestores) {
  Bytes data = random_bytes(1, 64);
  const Bytes original = data;
  util::Rng rng(2);
  const BurstSpec spec = random_burst(rng, 64 * 8, 17);
  apply_burst(data, spec);
  EXPECT_NE(data, original);
  apply_burst(data, spec);
  EXPECT_EQ(data, original);
}

TEST(ErrorInject, RandomBurstSpansExactlyItsLength) {
  util::Rng rng(3);
  for (unsigned len = 1; len <= 64; ++len) {
    const BurstSpec spec = random_burst(rng, 1024, len);
    EXPECT_EQ(spec.length_bits, len);
    EXPECT_TRUE(spec.pattern & 1ULL);
    EXPECT_TRUE(spec.pattern & (1ULL << (len - 1)));
    if (len < 64) {
      EXPECT_EQ(spec.pattern >> len, 0u);
    }
    EXPECT_LE(spec.bit_offset + len, 1024u);
  }
}

// §2: the Internet checksum catches every burst of <= 15 bits.
class TcpBurstGuarantee : public ::testing::TestWithParam<unsigned> {};

TEST_P(TcpBurstGuarantee, AllBurstsDetected) {
  const unsigned len = GetParam();
  const Bytes data = random_bytes(4, 64);
  const std::uint16_t good = alg::internet_sum(ByteView(data));
  util::Rng rng(5 + len);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes corrupted = data;
    apply_burst(corrupted, random_burst(rng, 64 * 8, len));
    // Detection = congruence class changes.
    EXPECT_NE(alg::ones_canonical(alg::internet_sum(ByteView(corrupted))),
              alg::ones_canonical(good));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, TcpBurstGuarantee,
                         ::testing::Values(1u, 2u, 3u, 7u, 8u, 9u, 15u));

TEST(TcpBurst, SixteenBitBurstsOnlyMissOnZeroSwap) {
  // A 16-bit aligned burst that rewrites 0x0000 <-> 0xFFFF is the one
  // undetectable 16-bit burst.
  Bytes data = random_bytes(6, 64);
  data[10] = 0x00;
  data[11] = 0x00;
  const std::uint16_t good =
      alg::ones_canonical(alg::internet_sum(ByteView(data)));
  Bytes swapped = data;
  swapped[10] = 0xff;
  swapped[11] = 0xff;
  EXPECT_EQ(alg::ones_canonical(alg::internet_sum(ByteView(swapped))), good);

  // Any other aligned 16-bit rewrite is caught.
  util::Rng rng(7);
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes corrupted = data;
    const std::uint16_t nv = static_cast<std::uint16_t>(rng.below(65536));
    if (nv == 0x0000 || nv == 0xffff) continue;
    corrupted[10] = static_cast<std::uint8_t>(nv >> 8);
    corrupted[11] = static_cast<std::uint8_t>(nv);
    EXPECT_NE(alg::ones_canonical(alg::internet_sum(ByteView(corrupted))),
              good);
  }
}

// §2: CRC-32 detects every burst spanning up to 32 bits: a burst
// spanning exactly 32 positions is x^k times a degree-31 polynomial,
// which the degree-32 generator can never divide. (The first
// undetectable burst length is 33 bits — the generator itself.)
class CrcBurstGuarantee : public ::testing::TestWithParam<unsigned> {};

TEST_P(CrcBurstGuarantee, AllBurstsDetected) {
  const unsigned len = GetParam();
  const Bytes data = random_bytes(8, 128);
  const std::uint32_t good = alg::crc32(ByteView(data));
  util::Rng rng(9 + len);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes corrupted = data;
    apply_burst(corrupted, random_burst(rng, 128 * 8, len));
    EXPECT_NE(alg::crc32(ByteView(corrupted)), good);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, CrcBurstGuarantee,
                         ::testing::Values(1u, 2u, 8u, 16u, 31u, 32u));

TEST(CrcDoubleBit, DetectedUpToLargeSeparations) {
  // "all 2-bit errors less than 2048 bits apart" — IEEE CRC-32's
  // actual guarantee window is far larger; verify a superset.
  const Bytes data = random_bytes(10, 1024);
  const std::uint32_t good = alg::crc32(ByteView(data));
  util::Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes corrupted = data;
    const std::size_t gap = 1 + rng.below(4000);
    const std::size_t first = rng.below(1024 * 8 - gap - 1);
    apply_double_bit(corrupted, first, gap);
    EXPECT_NE(alg::crc32(ByteView(corrupted)), good);
  }
}

TEST(CrcOddErrors, AlwaysDetected) {
  // Odd numbers of bit errors are always caught (the generator has
  // the (x+1) factor).
  const Bytes data = random_bytes(12, 256);
  const std::uint32_t good = alg::crc32(ByteView(data));
  util::Rng rng(13);
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes corrupted = data;
    const int flips = 1 + 2 * static_cast<int>(rng.below(6));  // 1,3,...,11
    for (int f = 0; f < flips; ++f) {
      const std::size_t bit = rng.below(256 * 8);
      corrupted[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
    }
    // Re-flipping the same bit twice makes the count even; tolerate by
    // checking parity of actual changes.
    std::size_t changed_bits = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
      changed_bits += static_cast<std::size_t>(
          std::popcount(static_cast<unsigned>(data[i] ^ corrupted[i])));
    if (changed_bits % 2 == 0) continue;
    EXPECT_NE(alg::crc32(ByteView(corrupted)), good);
  }
}

// Fletcher: every single burst shorter than 16 bits is detected
// (twos-complement version, per the paper's §2).
class FletcherBurstGuarantee : public ::testing::TestWithParam<unsigned> {};

TEST_P(FletcherBurstGuarantee, AllBurstsDetected) {
  const unsigned len = GetParam();
  const Bytes data = random_bytes(14, 64);
  const auto good = alg::fletcher_block(ByteView(data),
                                        alg::FletcherMod::kTwos256);
  util::Rng rng(15 + len);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes corrupted = data;
    apply_burst(corrupted, random_burst(rng, 64 * 8, len));
    EXPECT_NE(alg::fletcher_block(ByteView(corrupted),
                                  alg::FletcherMod::kTwos256),
              good);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FletcherBurstGuarantee,
                         ::testing::Values(1u, 2u, 7u, 11u, 15u));

}  // namespace
}  // namespace cksum::core
