// Non-cryptographic 64-bit content hashing.
//
// The splice simulator compares cell payloads billions of times; it
// keys those comparisons on a 64-bit hash of each 48-byte cell instead
// of byte-wise comparison. A 64-bit hash over <10^7 cells makes an
// accidental collision (~1e-5 via birthday bound) negligible next to
// the effects being measured, and the slow path re-verifies bytes.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace cksum::util {

/// FNV-1a 64-bit. Simple, stable reference hash.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data) noexcept;

/// Mixed 64-bit hash (FNV-1a core with a murmur-style finalizer) —
/// stronger avalanche than raw FNV for short inputs like 48-byte cells.
std::uint64_t hash64(std::span<const std::uint8_t> data) noexcept;

/// Convenience overload for string data.
std::uint64_t hash64(std::string_view text) noexcept;

/// Murmur3-style finalizer; useful to hash integers / combine hashes.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-dependent combination of two hashes.
constexpr std::uint64_t combine_hash(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace cksum::util
