#include "atm/splice.hpp"

namespace cksum::atm {

util::Bytes materialize_splice(const CpcsPdu& p1, const CpcsPdu& p2,
                               const SpliceSpec& s) {
  util::Bytes out;
  out.reserve((s.k1 + s.k2 + 1) * kCellPayload);
  for (std::size_t i = 0; i + 1 < p1.num_cells(); ++i) {
    if (s.mask1 & (1u << i)) {
      const auto cell = p1.cell(i);
      out.insert(out.end(), cell.begin(), cell.end());
    }
  }
  for (std::size_t j = 0; j + 1 < p2.num_cells(); ++j) {
    if (s.mask2 & (1u << j)) {
      const auto cell = p2.cell(j);
      out.insert(out.end(), cell.begin(), cell.end());
    }
  }
  const auto eom = p2.cell(p2.num_cells() - 1);
  out.insert(out.end(), eom.begin(), eom.end());
  return out;
}

}  // namespace cksum::atm
