#!/bin/sh
# One-command reproduction: build, test, regenerate every table and
# figure, and capture the outputs next to EXPERIMENTS.md.
#
#   scripts/repro.sh [scale] [--bench] [--dist N]
#
# `scale` multiplies every synthetic corpus (default 1; the paper-sized
# runs used in EXPERIMENTS.md). Expect ~1 minute at scale 1. With
# `--bench`, also run scripts/bench.sh at the end to append a
# splice-evaluator entry to BENCH_splice.json. With `--dist N`, also
# run the distributed-service parity stage: the reference corpus
# evaluated by a coordinator + N worker processes must reproduce the
# single-process report bit for bit (docs/DIST.md).
set -eu
cd "$(dirname "$0")/.."

SCALE=1
RUN_BENCH=0
DIST_WORKERS=0
expect_dist=0
for arg in "$@"; do
  if [ "$expect_dist" -eq 1 ]; then
    DIST_WORKERS="$arg"
    expect_dist=0
    continue
  fi
  case "$arg" in
    --bench) RUN_BENCH=1 ;;
    --dist) expect_dist=1 ;;
    *) SCALE="$arg" ;;
  esac
done
if [ "$expect_dist" -eq 1 ]; then
  echo "--dist needs a worker count" >&2
  exit 2
fi
export CKSUMLAB_SCALE="$SCALE"

cmake -B build -G Ninja
cmake --build build

# In POSIX sh a pipeline reports the LAST command's status, so
# `ctest ... | tee` would let test failures slip past `set -e` (tee
# always succeeds). Stash each stage's real status in a file written
# inside the pipeline's subshell and check it explicitly. The
# `|| rc=$?` form keeps the inherited `set -e` from killing the
# subshell before the status is written.
status_file="$(mktemp)"
trap 'rm -f "$status_file"' EXIT

{
  rc=0
  ctest --test-dir build 2>&1 || rc=$?
  echo "$rc" > "$status_file"
} | tee test_output.txt
read -r ctest_status < "$status_file"
if [ "$ctest_status" -ne 0 ]; then
  echo "ctest failed (exit $ctest_status); see test_output.txt" >&2
  exit "$ctest_status"
fi

{
  bench_status=0
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $(basename "$b") ====="
      if ! "$b"; then
        bench_status=1
        echo "BENCH FAILED: $b" >&2
      fi
      echo
    fi
  done
  echo "$bench_status" > "$status_file"
} 2>&1 | tee bench_output.txt
read -r bench_status < "$status_file"
if [ "$bench_status" -ne 0 ]; then
  echo "a bench failed; see bench_output.txt" >&2
  exit 1
fi

if [ "$DIST_WORKERS" -gt 0 ]; then
  # Same status-file pattern as above: the pipeline's exit status is
  # tee's, so the stage's real status must travel through a file.
  {
    rc=0
    {
      ./build/tools/cksumlab splice --quick --json > dist_single.json &&
      ./build/tools/cksumlab splice --quick --json \
        --serve --workers "$DIST_WORKERS" > dist_merged.json &&
      cmp dist_single.json dist_merged.json &&
      echo "distributed report ($DIST_WORKERS workers) identical to" \
           "single-process run" &&
      ./build/tools/faultlab distkill --workers "$DIST_WORKERS" --quick
    } || rc=$?
    rm -f dist_single.json dist_merged.json
    echo "$rc" > "$status_file"
  } 2>&1 | tee dist_output.txt
  read -r dist_status < "$status_file"
  if [ "$dist_status" -ne 0 ]; then
    echo "distributed parity stage failed; see dist_output.txt" >&2
    exit 1
  fi
fi

if [ "$RUN_BENCH" -eq 1 ]; then
  sh scripts/bench.sh
fi

echo "done: test_output.txt and bench_output.txt refreshed (scale $SCALE)"
