#include "net/ipv4.hpp"

#include "checksum/internet.hpp"
#include "checksum/kernels/kernel.hpp"

namespace cksum::net {

void Ipv4Header::write(std::uint8_t* out) const noexcept {
  out[0] = static_cast<std::uint8_t>((version << 4) | (ihl & 0xf));
  out[1] = tos;
  util::store_be16(out + 2, total_length);
  util::store_be16(out + 4, id);
  util::store_be16(out + 6, frag_off);
  out[8] = ttl;
  out[9] = protocol;
  util::store_be16(out + 10, header_checksum);
  util::store_be32(out + 12, src);
  util::store_be32(out + 16, dst);
}

std::optional<Ipv4Header> Ipv4Header::parse(util::ByteView data) noexcept {
  if (data.size() < kIpv4HeaderLen) return std::nullopt;
  Ipv4Header h;
  h.version = static_cast<std::uint8_t>(data[0] >> 4);
  h.ihl = static_cast<std::uint8_t>(data[0] & 0xf);
  h.tos = data[1];
  h.total_length = util::load_be16(data.data() + 2);
  h.id = util::load_be16(data.data() + 4);
  h.frag_off = util::load_be16(data.data() + 6);
  h.ttl = data[8];
  h.protocol = data[9];
  h.header_checksum = util::load_be16(data.data() + 10);
  h.src = util::load_be32(data.data() + 12);
  h.dst = util::load_be32(data.data() + 16);
  return h;
}

std::uint16_t Ipv4Header::compute_checksum() const noexcept {
  std::uint8_t raw[kIpv4HeaderLen];
  Ipv4Header copy = *this;
  copy.header_checksum = 0;
  copy.write(raw);
  return alg::kern::internet_checksum(util::ByteView(raw, kIpv4HeaderLen));
}

bool ipv4_checksum_ok(util::ByteView raw_header) noexcept {
  if (raw_header.size() < kIpv4HeaderLen) return false;
  // A correct header sums to exactly 0xFFFF (a fold of 0x0000 would
  // require every byte to be zero, which version/protocol rule out,
  // but we don't accept it anyway).
  return alg::kern::internet_sum(raw_header.first(kIpv4HeaderLen)) == 0xffff;
}

}  // namespace cksum::net
