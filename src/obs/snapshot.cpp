#include "obs/snapshot.hpp"

#include <cstdio>
#include <fstream>

#ifndef CKSUM_GIT_DESCRIBE
#define CKSUM_GIT_DESCRIBE "unknown"
#endif

namespace cksum::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

std::string metrics_json(const Snapshot& snap) {
  std::string out = "{";
  bool first = true;
  for (const MetricValue& m : snap.metrics) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(m.name) + "\": {\"kind\": \"" +
           std::string(name(m.kind)) + "\", \"tag\": \"" +
           std::string(name(m.tag)) + "\", ";
    switch (m.kind) {
      case Kind::kCounter:
        out += "\"value\": " + std::to_string(m.value);
        break;
      case Kind::kGauge:
        out += "\"value\": " + std::to_string(m.gauge);
        break;
      case Kind::kHistogram: {
        out += "\"count\": " + std::to_string(m.value) +
               ", \"sum\": " + std::to_string(m.sum) + ", \"buckets\": [";
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          if (i != 0) out += ", ";
          out += std::to_string(m.buckets[i]);
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::vector<CounterDelta> counter_deltas(const Snapshot& before,
                                         const Snapshot& after) {
  std::vector<CounterDelta> out;
  for (const MetricValue& m : after.metrics) {
    if (m.kind != Kind::kCounter || m.tag != Tag::kDeterministic) continue;
    std::uint64_t prev = 0;
    if (const MetricValue* b = before.find(m.name); b != nullptr)
      prev = b->value;
    if (m.value > prev) out.push_back({m.name, m.value - prev});
  }
  return out;
}

std::string git_describe() { return CKSUM_GIT_DESCRIBE; }

std::string manifest_json(const RunInfo& info, const Snapshot& snap) {
  char wall[32];
  std::snprintf(wall, sizeof wall, "%.6f", info.wall_seconds);
  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(kManifestSchema) + "\",\n";
  out += "  \"tool\": \"" + json_escape(info.tool) + "\",\n";
  out += "  \"corpus\": \"" + json_escape(info.corpus) + "\",\n";
  out += "  \"seed\": " + std::to_string(info.seed) + ",\n";
  out += "  \"threads\": " + std::to_string(info.threads) + ",\n";
  out += "  \"git\": \"" + json_escape(git_describe()) + "\",\n";
  out += "  \"wall_seconds\": " + std::string(wall) + ",\n";
  out += "  \"metrics\": " + metrics_json(snap);
  if (!info.extra_json.empty()) out += ",\n  " + info.extra_json;
  out += "\n}\n";
  return out;
}

bool write_manifest(const std::string& path, const RunInfo& info,
                    const Snapshot& snap) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << manifest_json(info, snap);
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace cksum::obs
