// Hardware-speed checksum kernels behind a runtime-selectable registry.
//
// Every algorithm the paper studies has one obviously-correct scalar
// formulation (byte-at-a-time, reduce every step) and one or more
// machine-width formulations that are several-fold faster but easy to
// get subtly wrong: table-slicing CRCs, SWAR ones-complement sums with
// deferred end-around carries, Fletcher/Adler loops with deferred
// modular reduction. This registry packages each formulation tier as a
// named *kernel* — a complete suite of entry points for all five
// algorithms — and routes the pipeline's hot callers through one
// process-wide selection:
//
//   scalar   the reference: byte/word-at-a-time, immediate reduction
//   slicing  slicing-by-8 CRC-32 (tables derived from GenericCrc),
//            blocked Fletcher/Fletcher-32/Adler-32 with deferred
//            modular reduction, word-at-a-time Internet sum
//   swar     slicing's integer kernels plus a 64-bit SWAR Internet
//            sum with deferred end-around-carry folding
//   chorba   tableless CRC-32 via sparse polynomial convolution
//            (arXiv 2412.16398) over swar's integer kernels
//   clmul    carry-less-multiply folding CRC-32 (PCLMULQDQ / PMULL)
//            — only on hardware that has the instructions
//   best     alias for the highest-tier kernel *available here*
//
// Availability is a runtime property: every kernel is always listed,
// but a kernel may report itself unavailable on this machine (clmul
// without carry-less-multiply hardware). `best` resolves per machine
// — clmul where supported, else chorba — and unavailable kernels are
// not selectable; kernel_selection_reason() says why the active
// kernel is what it is, and exported manifests record it.
//
// Selection is a single process-wide switch: `select_kernel()` (or the
// CKSUM_KERNEL environment variable, or --kernel on cksumlab/faultlab)
// picks the kernel every dispatched call uses, so a whole splice run
// can be re-executed under a different kernel with one flag. All
// kernels are bit-identical — the conformance harness in
// tests/test_kernels.cpp differentially proves it — so results are
// bitwise-deterministic regardless of selection.
//
// The dispatched entry points record per-kernel obs counters
// (`kernel.<name>.calls` / `kernel.<name>.bytes`) so an exported run
// manifest shows which kernel did the work and how much of it. The
// counts accumulate in plain thread-local cells — two relaxed stores
// per dispatch, nothing shared — and merge into the obs registry only
// at snapshot time via a snapshot source, so sub-64-byte frame floods
// never contend on registry slots. `kernel.<name>.available` gauges
// (0/1) record the availability picture the run saw.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "checksum/fletcher.hpp"
#include "checksum/fletcher32.hpp"
#include "checksum/koopman.hpp"
#include "util/bytes.hpp"

namespace cksum::alg::kern {

/// One formulation tier: a complete, bit-identical suite of entry
/// points for the seven algorithms. All function pointers are
/// non-null.
struct Kernel {
  std::string_view name;         ///< registry key ("scalar", "slicing", ...)
  std::string_view description;  ///< one-line technique summary
  int tier = 0;                  ///< "best" picks the highest tier

  /// RFC 1071 ones-complement sum (not inverted), big-endian words.
  std::uint16_t (*internet_sum)(util::ByteView data) noexcept = nullptr;
  /// 8-bit Fletcher pair, end-weighted within the block.
  FletcherPair (*fletcher)(util::ByteView data, FletcherMod mod) noexcept =
      nullptr;
  /// 32-bit Fletcher pair (16-bit big-endian words mod 65535).
  Fletcher32Pair (*fletcher32)(util::ByteView data) noexcept = nullptr;
  /// Adler-32 streaming continuation (pass 1 to start).
  std::uint32_t (*adler32)(std::uint32_t adler, util::ByteView data) noexcept =
      nullptr;
  /// CRC-32 streaming continuation over finalised values (pass 0 to
  /// start; zlib semantics, identical to alg::crc32).
  std::uint32_t (*crc32)(std::uint32_t crc, util::ByteView data) noexcept =
      nullptr;
  /// Koopman large-block dual sum: 64-bit big-endian blocks feeding
  /// two Fletcher-style sums mod 65521 (arXiv 2302.13432).
  KoopmanDualPair (*koopman_dual)(util::ByteView data) noexcept = nullptr;
  /// Koopman large-block single sum: 64-bit blocks mod 2^32 - 5.
  std::uint64_t (*koopman_single)(util::ByteView data) noexcept = nullptr;

  /// Runtime availability probe. nullptr for kernels that run on any
  /// machine; otherwise returns nullptr when this machine can run the
  /// kernel, else a short static reason it cannot ("CPU lacks
  /// carry-less multiply ..."). Unavailable kernels stay listed in
  /// kernels() but are never selectable and never picked by "best".
  const char* (*unavailable)() noexcept = nullptr;
};

/// True when `k` can actually run on this machine.
bool kernel_available(const Kernel& k) noexcept;

/// nullptr when `k` is available here, else the human-readable reason
/// it is not (static storage; never free it).
const char* kernel_unavailable_reason(const Kernel& k) noexcept;

/// Every registered kernel, in tier order (scalar first).
std::span<const Kernel> kernels() noexcept;

/// Look up a kernel by name; "best" resolves to the highest tier
/// available on this machine. Returns nullptr for unknown names (an
/// unavailable kernel is still found — callers that care distinguish
/// with kernel_available()).
const Kernel* find_kernel(std::string_view name) noexcept;

/// The scalar reference kernel — what the conformance harness and the
/// differential tests compare every other kernel against.
const Kernel& scalar_kernel() noexcept;

/// The kernel dispatched calls currently use. On first use the
/// selection is initialised from the CKSUM_KERNEL environment variable
/// when it names a registered kernel (or "best") that is available on
/// this machine, else to "best".
const Kernel& active_kernel() noexcept;

/// Select the dispatch kernel by name ("best", "scalar", "slicing",
/// "swar", "chorba", "clmul"). Returns false (selection unchanged)
/// for unknown names and for kernels unavailable on this machine.
/// Intended for process startup; switching while other threads are
/// dispatching is safe but the cutover point is unspecified.
bool select_kernel(std::string_view name) noexcept;

/// One sentence describing why active_kernel() is what it is:
/// "best: highest available tier" (with per-kernel unavailability
/// notes), an explicit selection, a CKSUM_KERNEL pick, or a fallback
/// after CKSUM_KERNEL named something unusable. Exported manifests
/// record this as the "kernel_reason" member next to "kernel".
std::string kernel_selection_reason();

/// Environment variable consulted on first dispatch (and by the CLI
/// drivers, which reject unknown values loudly).
inline constexpr const char* kKernelEnv = "CKSUM_KERNEL";

/// Idempotently register the kernel.* metric families for every
/// registered kernel with obs::Registry::global(), so exported
/// manifests carry the full (zero-valued) family even before the first
/// dispatched call. Tagged kScheduling: the split across kernels is a
/// property of this run's configuration, not of the corpus, and must
/// not participate in cross-configuration determinism diffs.
void register_kernel_metrics();

// --- Dispatched entry points (the hot callers' interface) -----------

std::uint16_t internet_sum(util::ByteView data) noexcept;
std::uint16_t internet_checksum(util::ByteView data) noexcept;
FletcherPair fletcher_block(util::ByteView data, FletcherMod mod) noexcept;
Fletcher32Pair fletcher32_block(util::ByteView data) noexcept;
std::uint32_t adler32(std::uint32_t adler, util::ByteView data) noexcept;
std::uint32_t crc32(std::uint32_t crc, util::ByteView data) noexcept;
inline std::uint32_t crc32(util::ByteView data) noexcept {
  return crc32(0, data);
}
KoopmanDualPair koopman_dual(util::ByteView data) noexcept;
std::uint64_t koopman_single(util::ByteView data) noexcept;

}  // namespace cksum::alg::kern
