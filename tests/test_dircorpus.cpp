// Directory-corpus support: deterministic enumeration, limits,
// truncation, and end-to-end runs over a temp tree.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/dircorpus.hpp"
#include "core/experiments.hpp"
#include "fsgen/generator.hpp"

namespace cksum::core {
namespace {

namespace fs = std::filesystem;

class DirCorpus : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("cksumlab_test_" + std::to_string(::getpid()));
    fs::create_directories(root_ / "sub" / "deeper");
    write(root_ / "b.txt", fsgen::generate_file(fsgen::FileKind::kText, 1, 3000));
    write(root_ / "a.bin",
          fsgen::generate_file(fsgen::FileKind::kGmonProfile, 2, 5000));
    write(root_ / "sub" / "c.dat",
          fsgen::generate_file(fsgen::FileKind::kRandom, 3, 2000));
    write(root_ / "sub" / "deeper" / "d.txt",
          fsgen::generate_file(fsgen::FileKind::kCSource, 4, 1000));
    write(root_ / "empty.txt", {});
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void write(const fs::path& p, const util::Bytes& data) {
    std::ofstream out(p, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }

  fs::path root_;
};

TEST_F(DirCorpus, ListsRegularFilesSortedAndSkipsEmpty) {
  const auto files = list_corpus_files(root_);
  ASSERT_EQ(files.size(), 4u);  // empty.txt skipped
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  EXPECT_EQ(files[0].filename(), "a.bin");
}

TEST_F(DirCorpus, MaxFilesLimit) {
  DirLimits limits;
  limits.max_files = 2;
  EXPECT_EQ(list_corpus_files(root_, limits).size(), 2u);
}

TEST_F(DirCorpus, TotalBytesLimitStopsEnumeration) {
  DirLimits limits;
  limits.max_total_bytes = 6000;  // a.bin (~5000) + not much more
  const auto files = list_corpus_files(root_, limits);
  EXPECT_LT(files.size(), 4u);
  EXPECT_GE(files.size(), 1u);
}

TEST_F(DirCorpus, ReadPrefixTruncates) {
  const auto full = read_file_prefix(root_ / "a.bin", 1 << 20);
  const auto prefix = read_file_prefix(root_ / "a.bin", 100);
  ASSERT_EQ(prefix.size(), 100u);
  EXPECT_TRUE(std::equal(prefix.begin(), prefix.end(), full.begin()));
}

TEST_F(DirCorpus, ReadMissingFileReturnsEmpty) {
  EXPECT_TRUE(read_file_prefix(root_ / "nope", 100).empty());
}

TEST_F(DirCorpus, RunDirectoryEndToEnd) {
  SpliceRunConfig cfg;
  cfg.flow = paper_flow_config();
  const SpliceStats st = run_directory(cfg, root_);
  EXPECT_EQ(st.files, 4u);
  EXPECT_GT(st.packets, 30u);
  EXPECT_GT(st.total, 0u);
  EXPECT_EQ(st.total, st.caught_by_header + st.identical + st.remaining);
}

TEST_F(DirCorpus, CollectDirectoryStats) {
  const auto stats = collect_directory_stats(root_);
  EXPECT_GT(stats.cells_seen(), 100u);
  EXPECT_GT(stats.tcp_cells().total(), 100u);
}


TEST_F(DirCorpus, SymlinksAndSpecialEntriesSkipped) {
  std::error_code ec;
  fs::create_symlink(root_ / "a.bin", root_ / "link.bin", ec);
  if (!ec) {
    // A symlink to a regular file IS a regular file per
    // fs::is_regular_file (it follows links) — it gets picked up; a
    // dangling symlink must not.
    fs::create_symlink(root_ / "gone", root_ / "dangling", ec);
    const auto files = list_corpus_files(root_);
    for (const auto& p : files)
      EXPECT_NE(p.filename(), "dangling");
  }
}

TEST_F(DirCorpus, MissingRootThrows) {
  EXPECT_THROW(list_corpus_files(root_ / "does-not-exist"),
               fs::filesystem_error);
}

}  // namespace
}  // namespace cksum::core
