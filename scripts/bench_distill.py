#!/usr/bin/env python3
"""Distill a google-benchmark JSON dump into the BENCH_splice.json
trajectory at the repo root.

Usage: bench_distill.py RAW_JSON TRAJECTORY_JSON [--quick] [--check]
                        [--manifest PATH] [--speed PATH]

The trajectory file is a JSON array, one entry per bench.sh run:

    {
      "date": "2026-08-05T12:34:56Z",
      "commit": "abc1234...",
      "quick": false,
      "splices_per_sec": {"dfs": ..., "flat": ..., "reference": ...},
      "pairs_per_sec":   {"dfs": ..., "flat": ..., "reference": ...},
      "speedup_dfs_vs_flat": ...,
      "speedup_dfs_vs_reference": ...,
      "manifest": { ... },  # optional: telemetry run-manifest summary
      "kernel_throughput": {"crc32": {"scalar": ..., "slicing": ...,
                                      "swar": ...}, ...}  # optional
    }

A missing, empty, or whitespace-only trajectory file starts a fresh
array; a non-empty file that is not valid JSON is an error (the file
is left untouched rather than clobbered). Entries are validated
against the schema above before the file is rewritten — a malformed
new entry aborts, malformed pre-existing entries only warn.

--manifest ingests a cksum-metrics/1 run manifest (produced by
`cksumlab splice --metrics-out`, see docs/OBSERVABILITY.md) and
records its headline numbers under the entry's "manifest" key.

--speed ingests a bench_speed JSON dump (BM_Kernel_<alg>_<kernel>
rows, see bench/bench_speed.cpp) and records the 64 KiB bulk
throughput per algorithm per kernel under "kernel_throughput".

--check exits non-zero if the new DFS rate fell below 1/5 of the
previous entry's, if the DFS evaluator is slower than the flat one,
or (when --speed is given) if slicing-by-8 CRC-32 is less than 3x the
scalar byte-table kernel — the locally recorded trajectory entries
show >=4x, the gate is looser only to absorb CI-runner noise. The
--speed gates also compare the block-at-a-time Koopman dual sum
against byte-at-a-time Fletcher-256 (want >= 1.2x on the slicing
tier; locally ~1.8x) — rows absent from the dump skip the gate with
a notice, matching the chorba/clmul pattern.

The BM_RunCorpusStreamed rows (end-to-end splice run streamed from a
sealed corpus store, see docs/CORPUS.md) ride along under the entry's
"streaming" key, and --check holds streaming to >=0.95x the in-memory
BM_RunFilesystem rate per worker. The 8-thread aggregate gate
(>=4x the 1-thread streamed rate) only arms when the recorded
hw_threads is >=8 — on smaller machines it skips with a notice.
"""

import argparse
import datetime
import json
import subprocess
import sys

BENCH_KEYS = {
    "BM_SpliceDfs": "dfs",
    "BM_SpliceFlat": "flat",
    "BM_SpliceReference": "reference",
}

MANIFEST_SCHEMA = "cksum-metrics/1"


def load_trajectory(path):
    """Parse the trajectory array. Returns (entries, error)."""
    try:
        with open(path) as f:
            text = f.read()
    except FileNotFoundError:
        return [], None
    if not text.strip():
        return [], None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as e:
        return None, f"{path} is not valid JSON ({e}); not overwriting"
    if not isinstance(data, list):
        return None, f"{path} is not a JSON array; not overwriting"
    return data, None


def validate_entry(entry):
    """Schema problems with one trajectory entry, [] when clean."""
    problems = []
    if not isinstance(entry, dict):
        return ["entry is not an object"]
    for key in ("date", "commit"):
        if not isinstance(entry.get(key), str) or not entry.get(key):
            problems.append(f"{key!r} missing or not a non-empty string")
    if not isinstance(entry.get("quick"), bool):
        problems.append("'quick' missing or not a bool")
    for key in ("splices_per_sec", "pairs_per_sec"):
        rates = entry.get(key)
        if not isinstance(rates, dict):
            problems.append(f"{key!r} missing or not an object")
            continue
        for bench in BENCH_KEYS.values():
            if not isinstance(rates.get(bench), (int, float)):
                problems.append(f"{key!r}[{bench!r}] missing or not a number")
    for key in ("speedup_dfs_vs_flat", "speedup_dfs_vs_reference"):
        if not isinstance(entry.get(key), (int, float)):
            problems.append(f"{key!r} missing or not a number")
    if "manifest" in entry and not isinstance(entry["manifest"], dict):
        problems.append("'manifest' present but not an object")
    if "streaming" in entry:
        s = entry["streaming"]
        if not isinstance(s, dict):
            problems.append("'streaming' present but not an object")
        else:
            for key in ("in_memory_per_sec", "streamed_per_sec"):
                rates = s.get(key)
                if not isinstance(rates, dict) or not all(
                        isinstance(v, (int, float)) for v in rates.values()):
                    problems.append(f"'streaming'[{key!r}] not an object of "
                                    f"numbers")
            if not isinstance(s.get("hw_threads"), int):
                problems.append("'streaming'['hw_threads'] missing or not "
                                "an int")
    if "kernel_throughput" in entry:
        kt = entry["kernel_throughput"]
        if not isinstance(kt, dict):
            problems.append("'kernel_throughput' present but not an object")
        else:
            for alg, per_kernel in kt.items():
                if not isinstance(per_kernel, dict) or not all(
                        isinstance(v, (int, float))
                        for v in per_kernel.values()):
                    problems.append(
                        f"'kernel_throughput'[{alg!r}] not an object of "
                        f"numbers")
    return problems


# Bulk-buffer argument whose bytes/sec becomes the recorded throughput.
SPEED_BULK_ARG = "65536"


def speed_throughput(path):
    """kernel_throughput family from a bench_speed JSON dump.

    Rows are named BM_Kernel_<alg>_<kernel>/<bytes>; only the bulk
    (64 KiB) rows are recorded. Returns (family, error).
    """
    try:
        with open(path) as f:
            raw = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, f"cannot read speed dump {path}: {e}"
    family = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        base, _, arg = name.partition("/")
        parts = base.split("_")
        if len(parts) != 4 or parts[:2] != ["BM", "Kernel"]:
            continue
        if arg != SPEED_BULK_ARG:
            continue
        bps = b.get("bytes_per_second")
        if not isinstance(bps, (int, float)):
            return None, f"speed dump {path}: {name} has no bytes_per_second"
        family.setdefault(parts[2], {})[parts[3]] = bps
    if not family:
        return None, (f"speed dump {path}: no BM_Kernel_* rows at "
                      f"/{SPEED_BULK_ARG} — was bench_speed run with "
                      f"--benchmark_filter='BM_Kernel_'?")
    return family, None


def manifest_summary(path):
    """Headline numbers from a cksum-metrics/1 run manifest.

    Returns (summary, error); validation failures are errors because a
    bad manifest means the telemetry pipeline itself is broken.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, f"cannot read manifest {path}: {e}"
    if not isinstance(doc, dict) or doc.get("schema") != MANIFEST_SCHEMA:
        got = doc.get("schema") if isinstance(doc, dict) else type(doc)
        return None, (f"manifest {path}: schema is {got!r}, "
                      f"want {MANIFEST_SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return None, f"manifest {path}: 'metrics' missing"

    def value(name):
        m = metrics.get(name)
        return m.get("value") if isinstance(m, dict) else None

    for name in ("splice.total", "splice.pairs"):
        if not isinstance(value(name), int):
            return None, f"manifest {path}: metric {name!r} missing"
    fast = value("splice.fast_path") or 0
    slow = value("splice.slow_path") or 0
    evaluated = fast + slow
    return {
        "tool": doc.get("tool"),
        "corpus": doc.get("corpus"),
        "threads": doc.get("threads"),
        "git": doc.get("git"),
        "wall_seconds": doc.get("wall_seconds"),
        "splices": value("splice.total"),
        "pairs": value("splice.pairs"),
        "fast_path_fraction": fast / evaluated if evaluated else None,
    }, None


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("raw", help="google-benchmark --benchmark_out JSON")
    ap.add_argument("trajectory", help="BENCH_splice.json to append to")
    ap.add_argument("--quick", action="store_true")
    ap.add_argument("--check", action="store_true")
    ap.add_argument("--manifest", metavar="PATH",
                    help="cksum-metrics/1 run manifest to summarize "
                         "into the entry")
    ap.add_argument("--speed", metavar="PATH",
                    help="bench_speed JSON dump whose BM_Kernel_* rows "
                         "become the entry's kernel_throughput family")
    args = ap.parse_args()

    with open(args.raw) as f:
        raw = json.load(f)

    splices = {}
    pairs = {}
    streaming = {"in_memory_per_sec": {}, "streamed_per_sec": {}}
    hw_threads = None
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        key = BENCH_KEYS.get(name.split("/")[0])
        if key is not None:
            splices[key] = b.get("items_per_second")
            pairs[key] = b.get("pairs_per_sec")
            continue
        # End-to-end rows: BM_RunFilesystem/<threads>[/real_time] and
        # BM_RunCorpusStreamed/<threads>[/real_time].
        parts = name.split("/")
        family = {"BM_RunFilesystem": "in_memory_per_sec",
                  "BM_RunCorpusStreamed": "streamed_per_sec"}.get(parts[0])
        if family is None or len(parts) < 2:
            continue
        rate = b.get("items_per_second")
        if isinstance(rate, (int, float)):
            streaming[family][parts[1]] = rate
        ht = b.get("hw_threads")
        if isinstance(ht, (int, float)):
            hw_threads = int(ht)

    missing = [k for k in BENCH_KEYS.values() if splices.get(k) is None]
    if missing:
        print(f"bench_distill: missing benchmarks: {missing}", file=sys.stderr)
        return 1

    entry = {
        "date": datetime.datetime.now(datetime.timezone.utc)
                .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "commit": git_commit(),
        "quick": args.quick,
        "splices_per_sec": splices,
        "pairs_per_sec": pairs,
        "speedup_dfs_vs_flat": splices["dfs"] / splices["flat"],
        "speedup_dfs_vs_reference": splices["dfs"] / splices["reference"],
    }

    if streaming["streamed_per_sec"] and hw_threads is not None:
        entry["streaming"] = dict(streaming, hw_threads=hw_threads)

    if args.manifest:
        summary, err = manifest_summary(args.manifest)
        if err:
            print(f"bench_distill: {err}", file=sys.stderr)
            return 1
        entry["manifest"] = summary

    if args.speed:
        family, err = speed_throughput(args.speed)
        if err:
            print(f"bench_distill: {err}", file=sys.stderr)
            return 1
        entry["kernel_throughput"] = family

    problems = validate_entry(entry)
    if problems:
        for p in problems:
            print(f"bench_distill: new entry invalid: {p}", file=sys.stderr)
        return 1

    trajectory, err = load_trajectory(args.trajectory)
    if err:
        print(f"bench_distill: {err}", file=sys.stderr)
        return 1
    for i, old in enumerate(trajectory):
        for p in validate_entry(old):
            print(f"bench_distill: warning: {args.trajectory} entry "
                  f"#{i + 1}: {p}", file=sys.stderr)

    previous = trajectory[-1] if trajectory else None
    trajectory.append(entry)
    with open(args.trajectory, "w") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")

    print(f"dfs:       {splices['dfs']:.3e} splices/sec")
    print(f"flat:      {splices['flat']:.3e} splices/sec "
          f"({entry['speedup_dfs_vs_flat']:.1f}x slower than dfs)")
    print(f"reference: {splices['reference']:.3e} splices/sec "
          f"({entry['speedup_dfs_vs_reference']:.1f}x slower than dfs)")
    if "manifest" in entry:
        m = entry["manifest"]
        frac = m["fast_path_fraction"]
        print(f"manifest:  {m['splices']:,} splices / {m['pairs']:,} pairs "
              f"on {m['corpus']} in {m['wall_seconds']:.3f}s "
              f"({100.0 * frac:.2f}% fast path)" if frac is not None else
              f"manifest:  {m['splices']:,} splices / {m['pairs']:,} pairs "
              f"on {m['corpus']}")
    if "kernel_throughput" in entry:
        for alg, per_kernel in sorted(entry["kernel_throughput"].items()):
            rates = ", ".join(f"{k} {v / 1e9:.2f} GB/s"
                              for k, v in sorted(per_kernel.items()))
            print(f"kernel {alg}: {rates}")
    if "streaming" in entry:
        s = entry["streaming"]
        mem1 = s["in_memory_per_sec"].get("1")
        str1 = s["streamed_per_sec"].get("1")
        if mem1 and str1:
            print(f"streaming: {str1:.3e} splices/sec from the corpus "
                  f"store vs {mem1:.3e} in-memory at 1 thread "
                  f"({str1 / mem1:.2f}x, {s['hw_threads']} hw threads)")
    print(f"appended entry #{len(trajectory)} to {args.trajectory}")

    if args.check:
        ok = True
        crc = entry.get("kernel_throughput", {}).get("crc32", {})
        if crc.get("scalar") and crc.get("slicing"):
            ratio = crc["slicing"] / crc["scalar"]
            if ratio < 3.0:
                print(f"CHECK FAILED: slicing-by-8 CRC-32 only {ratio:.2f}x "
                      f"scalar (want >=3x)", file=sys.stderr)
                ok = False
        # Folding/tableless tier gates, against the slicing baseline.
        # A missing row means bench_speed skipped the kernel as
        # unavailable on this machine — notice, not failure (the CI
        # clmul leg checks availability explicitly before relying on
        # this gate).
        for kern_name, floor in (("chorba", 1.5), ("clmul", 5.0)):
            if not crc.get(kern_name):
                print(f"CHECK NOTICE: no crc32/{kern_name} row "
                      f"(kernel unavailable on this machine); "
                      f"{kern_name} gate skipped", file=sys.stderr)
                continue
            if not crc.get("slicing"):
                continue
            ratio = crc[kern_name] / crc["slicing"]
            if ratio < floor:
                print(f"CHECK FAILED: {kern_name} CRC-32 only {ratio:.2f}x "
                      f"slicing (want >={floor}x)", file=sys.stderr)
                ok = False
        # Large-block family gate: the Koopman dual sum digests 8
        # bytes per step, so it must clearly beat byte-at-a-time
        # Fletcher-256 on the same tier. Rows are absent when
        # bench_speed ran with an older row set or a narrow filter —
        # notice, not failure.
        kt = entry.get("kernel_throughput", {})
        kdual = kt.get("koopmandual", {}).get("slicing")
        f256 = kt.get("fletcher256", {}).get("slicing")
        if not kdual or not f256:
            print("CHECK NOTICE: no koopmandual/fletcher256 slicing rows "
                  "in the speed dump; Koopman-vs-Fletcher gate skipped",
                  file=sys.stderr)
        else:
            ratio = kdual / f256
            if ratio < 1.2:
                print(f"CHECK FAILED: Koopman dual sum only {ratio:.2f}x "
                      f"Fletcher-256 on the slicing tier (want >=1.2x)",
                      file=sys.stderr)
                ok = False
        # Streaming-corpus gates: the store bakes packetisation in at
        # build time, so streaming must not lose more than noise per
        # worker, and must actually scale when the machine can.
        s = entry.get("streaming")
        if not s:
            print("CHECK NOTICE: no BM_RunCorpusStreamed rows in the "
                  "dump; streaming gates skipped", file=sys.stderr)
        else:
            mem1 = s["in_memory_per_sec"].get("1")
            str1 = s["streamed_per_sec"].get("1")
            str8 = s["streamed_per_sec"].get("8")
            if mem1 and str1:
                ratio = str1 / mem1
                if ratio < 0.95:
                    print(f"CHECK FAILED: corpus-streamed run only "
                          f"{ratio:.2f}x the in-memory rate at 1 thread "
                          f"(want >=0.95x)", file=sys.stderr)
                    ok = False
            if str1 and str8:
                if s["hw_threads"] < 8:
                    print(f"CHECK NOTICE: machine has "
                          f"{s['hw_threads']} hw thread(s); 8-worker "
                          f"aggregate gate skipped", file=sys.stderr)
                else:
                    ratio = str8 / str1
                    if ratio < 4.0:
                        print(f"CHECK FAILED: streamed aggregate only "
                              f"{ratio:.2f}x the 1-thread rate at 8 "
                              f"workers (want >=4x)", file=sys.stderr)
                        ok = False
        if entry["speedup_dfs_vs_flat"] < 1.0:
            print("CHECK FAILED: DFS evaluator slower than flat baseline",
                  file=sys.stderr)
            ok = False
        if previous is not None:
            prev_dfs = previous.get("splices_per_sec", {}).get("dfs")
            if prev_dfs and splices["dfs"] < prev_dfs / 5.0:
                print(f"CHECK FAILED: DFS rate {splices['dfs']:.3e} is >5x "
                      f"below previous {prev_dfs:.3e}", file=sys.stderr)
                ok = False
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
