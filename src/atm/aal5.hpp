// AAL5 CPCS framing over ATM cells.
//
// A CPCS-PDU is the user payload padded to a 48-byte multiple with a
// trailer in the last 8 bytes: UU(1) CPI(1) Length(2, big-endian)
// CRC-32(4, big-endian). The CRC covers the entire PDU with the CRC
// field zeroed. The PDU is carried in 48-byte cells; the final cell
// is marked end-of-message in the ATM header (we model the EOM flag as
// "last cell of the PDU" — cell headers themselves carry no payload
// and are not part of any checksum, so they are not materialised).
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace cksum::atm {

inline constexpr std::size_t kCellPayload = 48;
inline constexpr std::size_t kAal5TrailerLen = 8;

struct Aal5Trailer {
  std::uint8_t uu = 0;
  std::uint8_t cpi = 0;
  std::uint16_t length = 0;
  std::uint32_t crc = 0;
};

class CpcsPdu {
 public:
  /// Default state: an empty (invalid) PDU, usable only as a
  /// placeholder before assignment.
  CpcsPdu() = default;

  /// Frame a payload: pad + trailer + CRC. Payload may be empty only
  /// in tests; the simulator never frames empty packets.
  static CpcsPdu frame(util::ByteView payload, std::uint8_t uu = 0,
                       std::uint8_t cpi = 0);

  /// Adopt raw PDU bytes (must be a non-zero multiple of 48).
  static std::optional<CpcsPdu> from_bytes(util::Bytes bytes);

  std::size_t num_cells() const noexcept {
    return bytes_.size() / kCellPayload;
  }
  util::ByteView cell(std::size_t i) const {
    return util::slice(util::ByteView(bytes_), i * kCellPayload, kCellPayload);
  }
  util::ByteView bytes() const noexcept { return {bytes_.data(), bytes_.size()}; }
  std::size_t payload_len() const noexcept { return payload_len_; }
  util::ByteView payload() const noexcept { return {bytes_.data(), payload_len_}; }

  Aal5Trailer trailer() const noexcept;

 private:
  util::Bytes bytes_;
  std::size_t payload_len_ = 0;
};

/// Parse the trailer from the last 8 bytes of raw PDU bytes.
Aal5Trailer parse_trailer(util::ByteView pdu_bytes);

/// Is `length` consistent with a PDU of `num_cells` cells?
/// (length + trailer must fit in the cells, with less than one cell of
/// slack — this is the receiver's first check on a reassembled PDU.)
constexpr bool length_consistent(std::size_t num_cells,
                                 std::size_t length) noexcept {
  if (num_cells == 0 || length == 0) return false;
  const std::size_t need = length + kAal5TrailerLen;
  return need <= num_cells * kCellPayload &&
         need > (num_cells - 1) * kCellPayload;
}

/// Receiver CRC check: recompute over everything except the stored
/// CRC and compare.
bool crc_ok(util::ByteView pdu_bytes);

/// Equivalent residue-style check: CRC over the whole PDU (stored CRC
/// included) leaves the AAL5 magic residue.
bool residue_ok(util::ByteView pdu_bytes);

}  // namespace cksum::atm
