#include "checksum/fletcher32.hpp"

namespace cksum::alg {

namespace {
constexpr std::uint64_t kMod = 65535;
// Word count before the deferred 64-bit accumulators could overflow:
// B grows as ~65535·n²/2, so reduce every 2^20 words (B < 2^57).
constexpr std::size_t kReduceWords = 1u << 20;
}  // namespace

Fletcher32Pair fletcher32_block(util::ByteView data) noexcept {
  std::uint64_t a = 0, b = 0;
  std::size_t i = 0;
  std::size_t words_since_reduce = 0;
  while (i < data.size()) {
    const std::uint32_t word =
        i + 1 < data.size()
            ? static_cast<std::uint32_t>((data[i] << 8) | data[i + 1])
            : static_cast<std::uint32_t>(data[i] << 8);
    a += word;
    b += a;
    i += 2;
    if (++words_since_reduce == kReduceWords) {
      a %= kMod;
      b %= kMod;
      words_since_reduce = 0;
    }
  }
  return {static_cast<std::uint32_t>(a % kMod),
          static_cast<std::uint32_t>(b % kMod)};
}

Fletcher32Pair fletcher32_combine(Fletcher32Pair x, Fletcher32Pair y,
                                  std::size_t y_len_words) noexcept {
  Fletcher32Pair out;
  out.a = static_cast<std::uint32_t>((x.a + y.a) % kMod);
  out.b = static_cast<std::uint32_t>(
      (x.b + (static_cast<std::uint64_t>(y_len_words) % kMod) * x.a + y.b) %
      kMod);
  return out;
}

void fletcher32_check_words(Fletcher32Pair rest, std::size_t u,
                            std::uint16_t& x, std::uint16_t& y) noexcept {
  // Same algebra as the 8-bit solver: X ≡ (u-1)A - B, Y ≡ B - uA.
  const std::uint64_t a = rest.a % kMod;
  const std::uint64_t b = rest.b % kMod;
  const std::uint64_t w = static_cast<std::uint64_t>(u) % kMod;
  const std::uint64_t wm1 = (w + kMod - 1) % kMod;
  x = static_cast<std::uint16_t>((wm1 * a % kMod + kMod - b) % kMod);
  y = static_cast<std::uint16_t>((b + kMod - w * a % kMod) % kMod);
}

bool fletcher32_verify(util::ByteView msg) noexcept {
  const Fletcher32Pair p = fletcher32_block(msg);
  return p.a == 0 && p.b == 0;
}

}  // namespace cksum::alg
