// Deterministic virtual-clock simulation of one ARQ transfer over a
// pair of faulty links.
//
// The simulator owns the clock (integer ticks), an event queue of
// in-flight link deliveries, one Sender and one Receiver, and two
// faults::LinkChannel instances (data direction and ACK direction,
// independently seeded). It answers the question the paper cannot:
// after the link-layer retransmission machinery has done its work,
// what *residual* undetected-error rate does each (policy, checksum)
// pair leave behind, and at what goodput/latency cost?
//
// The oracle is byte-level: every in-order delivery the receiver
// surfaces is compared against the exact payload the sender was given
// for that sequence number. A delivery that passed the frame checksum
// but does not match is a residual undetected error; an offered
// payload that ends neither delivered nor abandoned was silently lost
// to an undetected ACK/base corruption and is counted residual_lost.
// Both are ~2^-32 events under CRC-32 and measurably common under the
// 16-bit checks once fault rates reach the paper's regime.
//
// Every run is bit-reproducible from (SimConfig, payloads): links,
// jitter, and the event order are all derived from cfg.seed, and the
// event queue breaks time ties by insertion order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arq/endpoint.hpp"
#include "faults/link.hpp"

namespace cksum::arq {

struct SimConfig {
  ArqConfig arq;
  faults::LinkPlan data_link;  ///< sender -> receiver direction
  faults::LinkPlan ack_link;   ///< receiver -> sender direction
  std::uint64_t link_delay = 8;  ///< propagation ticks, each way
  std::uint64_t seed = 1;        ///< derives link seeds + backoff jitter
  /// Hard event cap; 0 = derived from the workload (generous — only a
  /// livelocked protocol can hit it, and hitting it is reported as a
  /// termination failure rather than a hang).
  std::uint64_t event_cap = 0;
};

struct SimResult {
  SenderStats sender;
  ReceiverStats receiver;
  faults::LinkStats data_link;
  faults::LinkStats ack_link;

  std::uint64_t payloads_offered = 0;
  std::uint64_t payload_bytes_offered = 0;
  std::uint64_t delivered_ok = 0;        ///< byte-identical to the oracle
  std::uint64_t residual_undetected = 0; ///< delivered but corrupt/misplaced
  std::uint64_t residual_lost = 0;       ///< neither delivered nor abandoned
  std::uint64_t gave_up = 0;             ///< abandoned by the sender
  std::uint64_t payload_bytes_ok = 0;

  std::uint64_t ticks = 0;        ///< virtual time at completion
  std::uint64_t events = 0;       ///< link deliveries processed
  std::uint64_t latency_sum = 0;  ///< first-send -> delivery, summed
  std::uint64_t latency_max = 0;

  bool terminated = false;  ///< false: event cap hit (protocol hang)
  std::string violation;    ///< internal invariant failures ("" = clean)

  /// Payload bytes correctly delivered per virtual tick.
  double goodput() const noexcept {
    return ticks == 0 ? 0.0
                      : static_cast<double>(payload_bytes_ok) /
                            static_cast<double>(ticks);
  }
  double mean_latency() const noexcept {
    const std::uint64_t n = delivered_ok + residual_undetected;
    return n == 0 ? 0.0
                  : static_cast<double>(latency_sum) / static_cast<double>(n);
  }
};

/// Idempotently register the arq.* metric family with
/// obs::Registry::global(); run_sim flushes its result into it.
void register_arq_metrics();

/// Run one transfer to completion (every payload delivered or
/// abandoned) and score it against the byte-level oracle.
SimResult run_sim(const SimConfig& cfg,
                  const std::vector<util::Bytes>& payloads);

}  // namespace cksum::arq
