// ARQ policy x checksum matrix smoke: one clean-link and one
// faulty-link transfer per (policy, checksum) pair, printing the
// retransmission cost and the residual undetected-error count for
// each. Like bench_faultmatrix, the run doubles as a regression gate:
// it exits non-zero when any transfer fails to terminate, when a
// fault-free link needs a retransmission or fails to deliver every
// payload bit-for-bit, or when CRC-32 lets a residual error through
// (a ~2^-32 event — seeing one in this tiny run means the oracle or
// the decoder broke, not bad luck).
//
// The full frontier (rate sweep, manifest export) lives in
// `faultlab arq`; this binary is the cheap always-on slice of it.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "arq/sim.hpp"
#include "checksum/checksum.hpp"
#include "core/report.hpp"
#include "util/rng.hpp"

using namespace cksum;

namespace {

std::vector<util::Bytes> make_payloads(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  std::vector<util::Bytes> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    util::Bytes p(1 + rng.below(600));
    rng.fill(p);
    out.push_back(std::move(p));
  }
  return out;
}

faults::LinkPlan faulty_plan() {
  faults::LinkPlan plan;
  plan.corrupt_rate = 0.05;
  plan.drop_rate = 0.03;
  plan.duplicate_rate = 0.02;
  plan.truncate_rate = 0.02;
  plan.reorder_rate = 0.03;
  plan.reorder_delay_max = 24;
  return plan;
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

int main() {
  constexpr arq::Policy kPolicies[] = {arq::Policy::kStopAndWait,
                                       arq::Policy::kGoBackN,
                                       arq::Policy::kSelectiveRepeat};
  constexpr alg::Algorithm kChecks[] = {
      alg::Algorithm::kInternet, alg::Algorithm::kFletcher255,
      alg::Algorithm::kFletcher256, alg::Algorithm::kCrc32};

  const auto payloads = make_payloads(0xBE4C, 64);

  std::printf("== ARQ matrix: clean + faulty link per policy x check ==\n");
  std::printf("   (%zu payloads; faulty link composes corruption, loss, "
              "duplication,\n    truncation, and reordering)\n\n",
              payloads.size());
  core::TextTable t({"policy", "check", "clean goodput", "retrans",
                     "residual", "gave up", "faulty goodput"});

  int failures = 0;
  std::uint64_t combo = 0;
  for (const auto policy : kPolicies) {
    for (const auto check : kChecks) {
      arq::SimConfig cfg;
      cfg.arq.policy = policy;
      cfg.arq.checksum = check;
      cfg.arq.window = 12;
      cfg.arq.rto = 40;
      cfg.arq.retry_budget = 8;
      cfg.link_delay = 8;
      cfg.seed = 0x9000 + combo++;

      // Clean link: every policy must deliver every payload untouched
      // without a single retransmission.
      const arq::SimResult clean = arq::run_sim(cfg, payloads);
      if (!clean.terminated || !clean.violation.empty()) {
        std::fprintf(stderr, "FAIL: %s/%s clean run did not terminate "
                             "cleanly: %s\n",
                     std::string(arq::name(policy)).c_str(),
                     std::string(alg::name(check)).c_str(),
                     clean.violation.c_str());
        ++failures;
      }
      if (clean.delivered_ok != payloads.size() ||
          clean.sender.retransmits != 0 || clean.residual_undetected != 0) {
        std::fprintf(stderr, "FAIL: %s/%s fault-free link delivered "
                             "%llu/%zu with %llu retransmits\n",
                     std::string(arq::name(policy)).c_str(),
                     std::string(alg::name(check)).c_str(),
                     static_cast<unsigned long long>(clean.delivered_ok),
                     payloads.size(),
                     static_cast<unsigned long long>(clean.sender.retransmits));
        ++failures;
      }

      arq::SimConfig fcfg = cfg;
      fcfg.data_link = faulty_plan();
      fcfg.ack_link = faulty_plan();
      fcfg.ack_link.corrupt_rate /= 2;
      fcfg.ack_link.drop_rate /= 2;
      const arq::SimResult faulty = arq::run_sim(fcfg, payloads);
      if (!faulty.terminated || !faulty.violation.empty()) {
        std::fprintf(stderr, "FAIL: %s/%s faulty run did not terminate "
                             "cleanly: %s\n",
                     std::string(arq::name(policy)).c_str(),
                     std::string(alg::name(check)).c_str(),
                     faulty.violation.c_str());
        ++failures;
      }
      if (check == alg::Algorithm::kCrc32 &&
          (faulty.residual_undetected != 0 || faulty.residual_lost != 0)) {
        std::fprintf(stderr, "FAIL: %s/CRC-32 leaked %llu residual "
                             "errors (+%llu lost)\n",
                     std::string(arq::name(policy)).c_str(),
                     static_cast<unsigned long long>(
                         faulty.residual_undetected),
                     static_cast<unsigned long long>(faulty.residual_lost));
        ++failures;
      }

      char clean_gp[32], faulty_gp[32];
      std::snprintf(clean_gp, sizeof clean_gp, "%.2f B/tick",
                    clean.goodput());
      std::snprintf(faulty_gp, sizeof faulty_gp, "%.2f B/tick",
                    faulty.goodput());
      t.add_row({std::string(arq::name(policy)),
                 std::string(alg::name(check)), clean_gp,
                 fmt_u64(faulty.sender.retransmits),
                 fmt_u64(faulty.residual_undetected + faulty.residual_lost),
                 fmt_u64(faulty.gave_up), faulty_gp});
    }
  }

  t.print(std::cout);
  std::printf(
      "\nExpected shape: clean goodput is identical down a policy's "
      "column (the checksum only changes what escapes, not the happy "
      "path); under faults the 16-bit checks may show residual errors "
      "while CRC-32 shows none; go-back-N retransmits more than "
      "selective repeat at the same rates.\n");

  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %d ARQ matrix guarantee(s) violated\n",
                 failures);
    return 1;
  }
  return 0;
}
