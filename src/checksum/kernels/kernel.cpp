#include "checksum/kernels/kernel.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <string>

#include "checksum/kernels/impl.hpp"
#include "obs/registry.hpp"

namespace cksum::alg::kern {

namespace {

constexpr Kernel kKernels[] = {
    {"scalar",
     "reference: byte/word-at-a-time with immediate modular reduction",
     0,
     impl::scalar_internet_sum,
     impl::scalar_fletcher,
     impl::scalar_fletcher32,
     impl::scalar_adler32,
     impl::scalar_crc32},
    {"slicing",
     "slicing-by-8 CRC-32; blocked Fletcher/Adler with deferred reduction",
     1,
     impl::slicing_internet_sum,
     impl::slicing_fletcher,
     impl::slicing_fletcher32,
     impl::slicing_adler32,
     impl::slicing_crc32},
    {"swar",
     "slicing integer kernels plus 64-bit SWAR Internet sum",
     2,
     impl::swar_internet_sum,
     impl::slicing_fletcher,
     impl::slicing_fletcher32,
     impl::slicing_adler32,
     impl::slicing_crc32},
};

constexpr int kNumKernels = static_cast<int>(std::size(kKernels));

int best_index() noexcept {
  int best = 0;
  for (int i = 1; i < kNumKernels; ++i)
    if (kKernels[i].tier > kKernels[best].tier) best = i;
  return best;
}

int index_of(std::string_view name) noexcept {
  if (name == "best") return best_index();
  for (int i = 0; i < kNumKernels; ++i)
    if (kKernels[i].name == name) return i;
  return -1;
}

/// Selected kernel index; -1 until the first dispatch (or explicit
/// select_kernel) resolves the CKSUM_KERNEL environment variable.
std::atomic<int> g_active{-1};

int active_index() noexcept {
  int idx = g_active.load(std::memory_order_relaxed);
  if (idx >= 0) return idx;
  const char* env = std::getenv(kKernelEnv);
  idx = env != nullptr ? index_of(env) : -1;
  if (idx < 0) idx = best_index();
  // Lost race: another thread resolved first; both wrote a valid index
  // derived from the same environment, so either winner is fine.
  int expected = -1;
  g_active.compare_exchange_strong(expected, idx, std::memory_order_relaxed);
  return g_active.load(std::memory_order_relaxed);
}

/// Per-kernel dispatch counters. The split of work across kernels is a
/// property of this run's configuration (like thread count), not of
/// the corpus, so the counters are tagged kScheduling and stay out of
/// cross-kernel determinism diffs.
struct KernelCounters {
  obs::Counter calls;
  obs::Counter bytes;
};

std::array<KernelCounters, kNumKernels>& counters() {
  static std::array<KernelCounters, kNumKernels> handles = [] {
    std::array<KernelCounters, kNumKernels> out;
    auto& reg = obs::Registry::global();
    for (int i = 0; i < kNumKernels; ++i) {
      const std::string prefix = "kernel." + std::string(kKernels[i].name);
      out[static_cast<std::size_t>(i)].calls =
          reg.counter(prefix + ".calls", obs::Tag::kScheduling);
      out[static_cast<std::size_t>(i)].bytes =
          reg.counter(prefix + ".bytes", obs::Tag::kScheduling);
    }
    return out;
  }();
  return handles;
}

/// The active kernel and its counters, with the byte count recorded.
const Kernel& dispatch(std::size_t bytes) noexcept {
  const int idx = active_index();
  const KernelCounters& c = counters()[static_cast<std::size_t>(idx)];
  c.calls.add(1);
  c.bytes.add(bytes);
  return kKernels[idx];
}

}  // namespace

std::span<const Kernel> kernels() noexcept { return kKernels; }

const Kernel* find_kernel(std::string_view name) noexcept {
  const int idx = index_of(name);
  return idx >= 0 ? &kKernels[idx] : nullptr;
}

const Kernel& scalar_kernel() noexcept { return kKernels[0]; }

const Kernel& active_kernel() noexcept { return kKernels[active_index()]; }

bool select_kernel(std::string_view name) noexcept {
  const int idx = index_of(name);
  if (idx < 0) return false;
  g_active.store(idx, std::memory_order_relaxed);
  return true;
}

void register_kernel_metrics() { counters(); }

std::uint16_t internet_sum(util::ByteView data) noexcept {
  return dispatch(data.size()).internet_sum(data);
}

std::uint16_t internet_checksum(util::ByteView data) noexcept {
  return static_cast<std::uint16_t>(~internet_sum(data));
}

FletcherPair fletcher_block(util::ByteView data, FletcherMod mod) noexcept {
  return dispatch(data.size()).fletcher(data, mod);
}

Fletcher32Pair fletcher32_block(util::ByteView data) noexcept {
  return dispatch(data.size()).fletcher32(data);
}

std::uint32_t adler32(std::uint32_t adler, util::ByteView data) noexcept {
  return dispatch(data.size()).adler32(adler, data);
}

std::uint32_t crc32(std::uint32_t crc, util::ByteView data) noexcept {
  return dispatch(data.size()).crc32(crc, data);
}

}  // namespace cksum::alg::kern
