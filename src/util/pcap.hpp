// Minimal classic-pcap writer, so simulated transfers and splices can
// be inspected in Wireshark/tcpdump and re-ingested by the trace lab
// (src/trace/pcap_reader.hpp). Timestamps are synthetic (one packet
// per microsecond) — the simulator has no clock.
//
// Two link types:
//  * LINKTYPE_RAW (101): each record is the raw IPv4 datagram.
//  * LINKTYPE_ETHERNET (1): each datagram is wrapped in a synthetic
//    14-byte Ethernet II header (locally administered MACs, ethertype
//    0x0800) so the capture exercises the link-layer decap path.
//
// Write failures are detected: a record only counts toward
// packets_written() if every byte of it reached the stream, and ok()
// reports whether the capture on disk is complete and well-formed.
#pragma once

#include <cstdint>
#include <ostream>

#include "util/bytes.hpp"

namespace cksum::util {

enum class PcapLink : std::uint32_t {
  kEthernet = 1,
  kRaw = 101,
};

class PcapWriter {
 public:
  /// Binds to an output stream and writes the global header.
  explicit PcapWriter(std::ostream& out, PcapLink link = PcapLink::kRaw);

  /// Append one datagram as a capture record (Ethernet-framed when the
  /// writer was constructed with PcapLink::kEthernet). Returns false —
  /// and does NOT count the packet — if the stream rejected any byte.
  bool write_packet(ByteView datagram);

  /// Records fully written so far. Never over-reports: a partially
  /// written record is not counted (but may still occupy trailing
  /// bytes of a failed stream — check ok() before trusting the file).
  std::size_t packets_written() const noexcept { return count_; }

  /// True while every byte written so far (global header included)
  /// was accepted by the stream. Sticky once false.
  bool ok() const noexcept { return ok_ && out_.good(); }

  PcapLink link() const noexcept { return link_; }

 private:
  std::ostream& out_;
  PcapLink link_;
  std::size_t count_ = 0;
  bool ok_ = true;
};

}  // namespace cksum::util
