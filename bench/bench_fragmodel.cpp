// Fragmentation-and-reassembly error model (paper abstract / §7).
//
// Error model: two adjacent datagrams are fragmented; a confused
// reassembler (stale state, colliding IP IDs) substitutes same-offset
// fragments of packet 2 into packet 1. Unlike AAL5 splices, nothing
// *moves*: every substituted fragment keeps its original offset.
//
// The paper's colouring theory then predicts something striking:
// Fletcher's advantage over the TCP checksum should VANISH — the B
// term only helped because splices reshuffle cell offsets — while the
// trailer-placed checksum keeps its advantage (its colour comes from
// the sequence-number difference, not from movement).
#include <cstdio>
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "net/fragment.hpp"

using namespace cksum;

namespace {

struct FragStats {
  std::uint64_t pairs = 0;
  std::uint64_t substitutions = 0;
  std::uint64_t identical = 0;
  std::uint64_t remaining = 0;
  std::uint64_t missed = 0;
};

FragStats run_frag_model(const net::PacketConfig& pkt_cfg,
                         const fsgen::Filesystem& fs, std::size_t mtu) {
  net::FlowConfig flow;
  flow.packet = pkt_cfg;
  flow.segment_size = 1440;  // large datagrams so fragmentation bites

  FragStats st;
  for (std::size_t fi = 0; fi < fs.file_count(); ++fi) {
    const util::Bytes file = fs.file(fi);
    const auto pkts = net::segment_file(flow, util::ByteView(file));
    for (std::size_t i = 0; i + 1 < pkts.size(); ++i) {
      const auto& p1 = pkts[i];
      const auto& p2 = pkts[i + 1];
      if (p1.bytes.size() != p2.bytes.size()) continue;
      const auto f1 = net::fragment_datagram(p1.ip_bytes(), mtu);
      const auto f2 = net::fragment_datagram(p2.ip_bytes(), mtu);
      if (f1.size() != f2.size() || f1.size() < 2 || f1.size() > 16) continue;
      ++st.pairs;

      // Canonical (defragmented) form of packet 1: reassembly clears
      // the fragment bits and recomputes the IP checksum, so the
      // identical-data comparison must use this form, not the
      // original wire bytes.
      const util::Bytes p1_canonical = *net::reassemble(f1);

      const std::size_t check_at =
          pkt_cfg.placement == net::ChecksumPlacement::kHeader
              ? net::kIpv4HeaderLen + 16
              : p1.bytes.size() - net::kTrailerCheckLen;

      // All non-trivial substitution patterns.
      const unsigned n = static_cast<unsigned>(f1.size());
      for (unsigned mask = 1; mask + 1 < (1u << n); ++mask) {
        ++st.substitutions;
        std::vector<net::Fragment> mixed = f1;
        for (unsigned b = 0; b < n; ++b)
          if (mask & (1u << b)) mixed[b] = f2[b];
        const auto rebuilt = net::reassemble(std::move(mixed));
        if (!rebuilt) continue;  // cannot happen: same tiling

        // Identical data (check field excluded)?
        bool identical = true;
        for (std::size_t k = 0; k < rebuilt->size() && identical; ++k) {
          if (k == check_at) {
            ++k;
            continue;
          }
          identical = (*rebuilt)[k] == p1_canonical[k];
        }
        if (identical) {
          ++st.identical;
          continue;
        }
        ++st.remaining;
        if (net::verify_transport_checksum(pkt_cfg,
                                           util::ByteView(*rebuilt)))
          ++st.missed;
      }
    }
  }
  return st;
}

}  // namespace

int main() {
  const double scale = core::scale_from_env();
  const fsgen::Filesystem fs(fsgen::profile("sics.se:/opt"), 0.5 * scale);
  constexpr std::size_t kMtu = 380;  // 360-byte fragment payloads

  std::printf(
      "== Fragmentation-substitution error model (MTU %zu, 1440-byte "
      "segments, sics.se:/opt) ==\n\n",
      kMtu);
  core::TextTable t(
      {"checksum", "substitutions", "identical", "remaining", "missed",
       "miss%"});
  for (const auto& [label, transport, placement] :
       {std::tuple{"TCP (header)", alg::Algorithm::kInternet,
                   net::ChecksumPlacement::kHeader},
        std::tuple{"TCP (trailer)", alg::Algorithm::kInternet,
                   net::ChecksumPlacement::kTrailer},
        std::tuple{"F-255", alg::Algorithm::kFletcher255,
                   net::ChecksumPlacement::kHeader},
        std::tuple{"F-256", alg::Algorithm::kFletcher256,
                   net::ChecksumPlacement::kHeader}}) {
    net::PacketConfig cfg;
    cfg.transport = transport;
    cfg.placement = placement;
    const FragStats st = run_frag_model(cfg, fs, kMtu);
    t.add_row({label, core::fmt_count(st.substitutions),
               core::fmt_count(st.identical), core::fmt_count(st.remaining),
               core::fmt_count(st.missed),
               core::fmt_pct(st.missed, st.remaining)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (colouring theory): substituted fragments keep "
      "their offsets, so Fletcher's positional advantage disappears — "
      "TCP, F-255 and F-256 miss at similar rates — while the trailer "
      "checksum keeps its sequence-number colour and stays far ahead.\n");
  return 0;
}
