// Report formatting and the experiment driver helpers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/experiments.hpp"
#include "core/report.hpp"

namespace cksum::core {
namespace {

TEST(FmtCount, GroupsThousands) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(7), "7");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(123456), "123,456");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(1000000000ULL), "1,000,000,000");
}

TEST(FmtPct, AdaptivePrecision) {
  EXPECT_EQ(fmt_pct(0.0), "0");
  EXPECT_EQ(fmt_pct(0.5), "50.0000");
  EXPECT_EQ(fmt_pct(0.0017 / 100), "0.001700");
  // Tiny rates switch to scientific notation.
  EXPECT_EQ(fmt_pct(1.0 / 4294967296.0), "2.33e-08");
}

TEST(FmtPct, Ratio) {
  EXPECT_EQ(fmt_pct(1, 4), "25.0000");
  EXPECT_EQ(fmt_pct(1, 0), "-");
}

TEST(FmtSci, TwoSignificantDigits) {
  EXPECT_EQ(fmt_sci(0.000152), "1.52e-04");
}

TEST(TextTable, AlignmentAndSeparators) {
  TextTable t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "12,345"});
  t.add_separator();
  t.add_row({"tail", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header first, separator after it, all lines same width structure.
  EXPECT_EQ(out.find("name"), 0u);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Right-aligned numeric column: "1" ends where "12,345" ends.
  std::istringstream lines(out);
  std::string header, sep, row1, row2;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(row1.size(), row2.size());
}

TEST(TextTable, RejectsColumnMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Experiments, PaperFlowConfig) {
  const net::FlowConfig cfg = paper_flow_config();
  EXPECT_EQ(cfg.segment_size, 256u);
  EXPECT_EQ(cfg.packet.transport, alg::Algorithm::kInternet);
  EXPECT_EQ(cfg.packet.placement, net::ChecksumPlacement::kHeader);
}

TEST(Experiments, ScaleFromEnv) {
  ::unsetenv("CKSUMLAB_SCALE");
  EXPECT_DOUBLE_EQ(scale_from_env(), 1.0);
  ::setenv("CKSUMLAB_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(), 2.5);
  ::setenv("CKSUMLAB_SCALE", "bogus", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(), 1.0);
  ::setenv("CKSUMLAB_SCALE", "-3", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(), 1.0);
  ::unsetenv("CKSUMLAB_SCALE");
}

TEST(Experiments, RunProfileSmoke) {
  net::PacketConfig cfg;
  const SpliceStats st = run_profile(fsgen::profile("nsc05"), cfg, 0.1);
  EXPECT_GT(st.files, 0u);
  EXPECT_GT(st.total, 0u);
  EXPECT_EQ(st.total, st.caught_by_header + st.identical + st.remaining);
}

TEST(Experiments, CollectCellStatsSmoke) {
  CellStatsConfig cfg;
  cfg.ks = {1};
  const auto stats = collect_cell_stats(fsgen::profile("nsc05"), 0.1, cfg);
  EXPECT_GT(stats.cells_seen(), 0u);
}

}  // namespace
}  // namespace cksum::core
