// The worker side of the distributed splice service: connect, receive
// the run configuration, then evaluate shard leases with the same
// prefix-sharing DFS evaluator a single-process run uses, streaming
// each shard's SpliceStats and deterministic-counter deltas back.
//
// A heartbeat thread keeps the current lease alive while the (possibly
// long) evaluation runs on the main thread; both threads share the
// FrameChannel, whose send side is mutex-serialised.
#pragma once

#include <cstdint>
#include <string>

namespace cksum::dist {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t worker_id = 0;
  /// Write this worker's own run manifest here on clean shutdown (""
  /// = off). The path travels back in Goodbye so the coordinator's
  /// aggregate manifest can list its sub-manifests.
  std::string metrics_out;
  /// RunInfo.tool recorded in the sub-manifest.
  std::string tool = "cksumlab splice-worker";
};

/// Run the worker loop to completion. Returns a process exit code:
/// 0 = clean shutdown, 1 = connection/config failure.
int run_worker(const WorkerOptions& opts);

}  // namespace cksum::dist
