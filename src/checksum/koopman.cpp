#include "checksum/koopman.hpp"

#include <cstring>

namespace cksum::alg {

namespace {

/// The (zero-padded) 64-bit big-endian value of one block; `len` may
/// be short for the final partial block.
std::uint64_t block_value(const std::uint8_t* p, std::size_t len) noexcept {
  if (len >= kKoopmanBlockBytes) return util::load_be64(p);
  std::uint8_t padded[kKoopmanBlockBytes] = {};
  std::memcpy(padded, p, len);
  return util::load_be64(padded);
}

void dual_step(std::uint32_t& a, std::uint32_t& b, std::uint64_t v) noexcept {
  a = static_cast<std::uint32_t>(
      (a + v % kKoopmanDualMod) % kKoopmanDualMod);
  b = (b + a) % kKoopmanDualMod;
}

}  // namespace

KoopmanDualPair koopman_dual_naive(util::ByteView data) noexcept {
  std::uint32_t a = 0, b = 0;
  for (std::size_t i = 0; i < data.size(); i += kKoopmanBlockBytes)
    dual_step(a, b, block_value(data.data() + i, data.size() - i));
  return {a, b};
}

std::uint64_t koopman_single_naive(util::ByteView data) noexcept {
  std::uint64_t s = 0;
  for (std::size_t i = 0; i < data.size(); i += kKoopmanBlockBytes)
    s = (s + block_value(data.data() + i, data.size() - i) %
                 kKoopmanSingleMod) %
        kKoopmanSingleMod;
  return s;
}

KoopmanDualPair koopman_dual_combine(KoopmanDualPair x, KoopmanDualPair y,
                                     std::uint64_t y_blocks) noexcept {
  // Every block of X gains y_blocks extra B-weight once Y follows it.
  const std::uint64_t shift =
      (y_blocks % kKoopmanDualMod) * static_cast<std::uint64_t>(x.a);
  return {(x.a + y.a) % kKoopmanDualMod,
          static_cast<std::uint32_t>(
              (static_cast<std::uint64_t>(x.b) + y.b + shift) %
              kKoopmanDualMod)};
}

KoopmanDualPair koopman_dual_shift(KoopmanDualPair x,
                                   std::uint64_t tail_blocks) noexcept {
  const std::uint64_t shift =
      (tail_blocks % kKoopmanDualMod) * static_cast<std::uint64_t>(x.a);
  return {x.a, static_cast<std::uint32_t>(
                   (static_cast<std::uint64_t>(x.b) + shift) %
                   kKoopmanDualMod)};
}

std::uint64_t koopman_single_combine(std::uint64_t x,
                                     std::uint64_t y) noexcept {
  return (x + y) % kKoopmanSingleMod;
}

void KoopmanDualSum::update(util::ByteView data) noexcept {
  std::size_t i = 0;
  if (npending_ > 0) {
    while (npending_ < kKoopmanBlockBytes && i < data.size())
      pending_[npending_++] = data[i++];
    if (npending_ < kKoopmanBlockBytes) return;
    dual_step(a_, b_, util::load_be64(pending_));
    npending_ = 0;
  }
  for (; i + kKoopmanBlockBytes <= data.size(); i += kKoopmanBlockBytes)
    dual_step(a_, b_, util::load_be64(data.data() + i));
  while (i < data.size()) pending_[npending_++] = data[i++];
}

KoopmanDualPair KoopmanDualSum::pair() const noexcept {
  std::uint32_t a = a_, b = b_;
  if (npending_ > 0) dual_step(a, b, block_value(pending_, npending_));
  return {a, b};
}

void KoopmanDualSum::reset() noexcept {
  a_ = b_ = 0;
  npending_ = 0;
}

void KoopmanSingleSum::update(util::ByteView data) noexcept {
  std::size_t i = 0;
  if (npending_ > 0) {
    while (npending_ < kKoopmanBlockBytes && i < data.size())
      pending_[npending_++] = data[i++];
    if (npending_ < kKoopmanBlockBytes) return;
    sum_ = (sum_ + util::load_be64(pending_) % kKoopmanSingleMod) %
           kKoopmanSingleMod;
    npending_ = 0;
  }
  for (; i + kKoopmanBlockBytes <= data.size(); i += kKoopmanBlockBytes)
    sum_ = (sum_ + util::load_be64(data.data() + i) % kKoopmanSingleMod) %
           kKoopmanSingleMod;
  while (i < data.size()) pending_[npending_++] = data[i++];
}

std::uint64_t KoopmanSingleSum::value() const noexcept {
  std::uint64_t s = sum_;
  if (npending_ > 0)
    s = (s + block_value(pending_, npending_) % kKoopmanSingleMod) %
        kKoopmanSingleMod;
  return s;
}

void KoopmanSingleSum::reset() noexcept {
  sum_ = 0;
  npending_ = 0;
}

}  // namespace cksum::alg
