// AAL5 framing and the splice enumerator.
#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <stdexcept>
#include <vector>

#include "atm/aal5.hpp"
#include "atm/splice.hpp"
#include "util/rng.hpp"

namespace cksum::atm {
namespace {

using util::ByteView;
using util::Bytes;

Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  Bytes b(n);
  util::Rng rng(seed);
  rng.fill(b);
  return b;
}

TEST(Aal5, FramingShape) {
  for (std::size_t len : {1u, 39u, 40u, 41u, 48u, 88u, 296u, 1000u}) {
    const Bytes payload = random_bytes(len, len);
    const CpcsPdu pdu = CpcsPdu::frame(ByteView(payload));
    EXPECT_EQ(pdu.bytes().size() % kCellPayload, 0u);
    EXPECT_GE(pdu.bytes().size(), len + kAal5TrailerLen);
    EXPECT_LT(pdu.bytes().size(), len + kAal5TrailerLen + kCellPayload);
    EXPECT_EQ(pdu.payload_len(), len);
    EXPECT_EQ(pdu.trailer().length, len);
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           pdu.bytes().begin()));
    EXPECT_TRUE(length_consistent(pdu.num_cells(), len));
  }
}

TEST(Aal5, PaddingIsZero) {
  const Bytes payload = random_bytes(1, 10);
  const CpcsPdu pdu = CpcsPdu::frame(ByteView(payload));
  const auto bytes = pdu.bytes();
  for (std::size_t i = 10; i + kAal5TrailerLen < bytes.size(); ++i)
    EXPECT_EQ(bytes[i], 0) << i;
}

TEST(Aal5, CrcChecks) {
  const Bytes payload = random_bytes(2, 296);
  const CpcsPdu pdu = CpcsPdu::frame(ByteView(payload));
  EXPECT_TRUE(crc_ok(pdu.bytes()));
  EXPECT_TRUE(residue_ok(pdu.bytes()));

  // Any corruption breaks both checks, and they always agree.
  util::Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    Bytes corrupt(pdu.bytes().begin(), pdu.bytes().end());
    corrupt[rng.below(corrupt.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    EXPECT_EQ(crc_ok(ByteView(corrupt)), residue_ok(ByteView(corrupt)));
    EXPECT_FALSE(crc_ok(ByteView(corrupt)));
  }
}

TEST(Aal5, CellAccess) {
  const Bytes payload = random_bytes(4, 100);
  const CpcsPdu pdu = CpcsPdu::frame(ByteView(payload));
  ASSERT_EQ(pdu.num_cells(), 3u);  // 108 bytes -> 144 = 3 cells
  EXPECT_EQ(pdu.cell(0).size(), kCellPayload);
  EXPECT_TRUE(std::equal(pdu.cell(0).begin(), pdu.cell(0).end(),
                         payload.begin()));
}

TEST(Aal5, LengthConsistency) {
  EXPECT_TRUE(length_consistent(7, 296));
  EXPECT_FALSE(length_consistent(6, 296));
  EXPECT_FALSE(length_consistent(8, 296));
  EXPECT_FALSE(length_consistent(0, 0));
  EXPECT_FALSE(length_consistent(1, 0));
  EXPECT_TRUE(length_consistent(1, 40));   // 48 exactly
  EXPECT_FALSE(length_consistent(1, 41));  // needs 2 cells
  EXPECT_TRUE(length_consistent(2, 41));
}

TEST(Aal5, FromBytesValidation) {
  const CpcsPdu pdu = CpcsPdu::frame(ByteView(random_bytes(5, 64)));
  Bytes raw(pdu.bytes().begin(), pdu.bytes().end());
  EXPECT_TRUE(CpcsPdu::from_bytes(raw).has_value());
  EXPECT_FALSE(CpcsPdu::from_bytes(Bytes(47, 0)).has_value());
  EXPECT_FALSE(CpcsPdu::from_bytes(Bytes{}).has_value());
}

TEST(SpliceCount, MatchesPaperCombinatorics) {
  // Two 7-cell packets: C(12,6) - 1 = 923 splices.
  EXPECT_EQ(splice_count(7, 7), 923u);
  // Degenerate shapes.
  EXPECT_EQ(splice_count(1, 7), 0u);  // pkt1 has no droppable cells
  EXPECT_EQ(splice_count(2, 1), 0u);  // splice must be exactly 1 cell = pkt2
  EXPECT_EQ(splice_count(2, 2), 1u);  // keep p1c0 + p2 EOM
}

TEST(SpliceCount, CellCapBoundary) {
  // 32 cells (31 non-EOM) is the widest shape the 32-bit masks can
  // enumerate; 33 used to shift by 32 (UB) and silently truncate.
  EXPECT_EQ(splice_count(32, 2), 31u);
  std::uint64_t count = 0;
  for_each_splice(32, 2, [&](const SpliceSpec&) { ++count; });
  EXPECT_EQ(count, 31u);

  EXPECT_THROW(splice_count(33, 7), std::length_error);
  EXPECT_THROW(splice_count(7, 33), std::length_error);
  EXPECT_THROW(for_each_splice(33, 7, [](const SpliceSpec&) {}),
               std::length_error);
  EXPECT_THROW(for_each_splice(7, 33, [](const SpliceSpec&) {}),
               std::length_error);
  EXPECT_THROW(splice_count_first_cell(33, 7, 0), std::length_error);
}

TEST(SpliceCount, FirstCellPartitionsSpliceSpace) {
  // Summing the per-first-cell counts over i recovers splice_count,
  // and each count matches direct enumeration (first kept cell of
  // pkt1 = lowest set bit of mask1).
  for (const auto& [n1, n2] : {std::pair<std::size_t, std::size_t>{7, 7},
                              {7, 2},
                              {2, 7},
                              {3, 3},
                              {10, 4},
                              {4, 10}}) {
    std::vector<std::uint64_t> by_first(n1, 0);
    for_each_splice(n1, n2, [&](const SpliceSpec& s) {
      ++by_first[static_cast<std::size_t>(std::countr_zero(s.mask1))];
    });
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n1; ++i) {
      EXPECT_EQ(splice_count_first_cell(n1, n2, i), by_first[i])
          << "n1=" << n1 << " n2=" << n2 << " i=" << i;
      sum += splice_count_first_cell(n1, n2, i);
    }
    EXPECT_EQ(sum, splice_count(n1, n2));
  }
  // The paper's 7/7 split, explicitly.
  EXPECT_EQ(splice_count_first_cell(7, 7, 0), 462u);
}

class SpliceEnum
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SpliceEnum, EnumerationMatchesCountAndInvariants) {
  const auto [n1, n2] = GetParam();
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  std::uint64_t count = 0;
  for_each_splice(n1, n2, [&](const SpliceSpec& s) {
    ++count;
    EXPECT_GE(s.k1, 1u);
    EXPECT_EQ(s.k1 + s.k2, n2 - 1);
    EXPECT_EQ(static_cast<unsigned>(std::popcount(s.mask1)), s.k1);
    EXPECT_EQ(static_cast<unsigned>(std::popcount(s.mask2)), s.k2);
    EXPECT_EQ(s.mask1 >> (n1 - 1), 0u);
    EXPECT_EQ(s.mask2 >> (n2 - 1), 0u);
    EXPECT_TRUE(seen.emplace(s.mask1, s.mask2).second) << "duplicate splice";
  });
  EXPECT_EQ(count, splice_count(n1, n2));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpliceEnum,
    ::testing::Values(std::pair<std::size_t, std::size_t>{7, 7},
                      std::pair<std::size_t, std::size_t>{7, 2},
                      std::pair<std::size_t, std::size_t>{2, 7},
                      std::pair<std::size_t, std::size_t>{3, 3},
                      std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{10, 4}));

TEST(Splice, MaterializeStructure) {
  const CpcsPdu p1 = CpcsPdu::frame(ByteView(random_bytes(10, 296)));
  const CpcsPdu p2 = CpcsPdu::frame(ByteView(random_bytes(11, 296)));
  ASSERT_EQ(p1.num_cells(), 7u);

  SpliceSpec s;
  s.mask1 = 0b000101;  // p1 cells 0 and 2
  s.mask2 = 0b110010;  // p2 cells 1, 4, 5
  s.k1 = 2;
  s.k2 = 3;
  const Bytes out = materialize_splice(p1, p2, s);
  ASSERT_EQ(out.size(), 6 * kCellPayload);
  auto cell_at = [&](std::size_t i) {
    return ByteView(out).subspan(i * kCellPayload, kCellPayload);
  };
  auto expect_cell = [&](std::size_t pos, const CpcsPdu& src, std::size_t idx) {
    EXPECT_TRUE(std::equal(cell_at(pos).begin(), cell_at(pos).end(),
                           src.cell(idx).begin()))
        << "pos=" << pos;
  };
  expect_cell(0, p1, 0);
  expect_cell(1, p1, 2);
  expect_cell(2, p2, 1);
  expect_cell(3, p2, 4);
  expect_cell(4, p2, 5);
  expect_cell(5, p2, 6);  // EOM always appended
}

TEST(Splice, IdentitySpliceReproducesPacket2Tail) {
  // Keeping nothing from p2 except what replaces p1 entirely:
  // mask2 = all of p2's data cells with k1 = 1 keeps ordering sane.
  const CpcsPdu p1 = CpcsPdu::frame(ByteView(random_bytes(12, 296)));
  const CpcsPdu p2 = CpcsPdu::frame(ByteView(random_bytes(13, 296)));
  SpliceSpec s;
  s.mask1 = 0b000001;
  s.mask2 = 0b011111;  // p2 cells 0..4
  s.k1 = 1;
  s.k2 = 5;
  const Bytes out = materialize_splice(p1, p2, s);
  // Positions 1..6 equal p2 cells 0..5... position 6 is the EOM (p2
  // cell 6).
  EXPECT_TRUE(std::equal(out.begin() + 48, out.end() - 48,
                         p2.bytes().begin()));
}

}  // namespace
}  // namespace cksum::atm
