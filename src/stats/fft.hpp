// Iterative radix-2 complex FFT, used for the cyclic convolutions in
// the paper's iid prediction model (Equation 1): the distribution of a
// sum of k independent cell checksums mod M is the k-fold cyclic
// convolution of the single-cell distribution. M = 65535 makes the
// direct O(M²) convolution painful; FFT brings a fold to O(M log M).
#pragma once

#include <complex>
#include <vector>

namespace cksum::stats {

/// In-place FFT. `data.size()` must be a power of two.
/// `inverse` applies the conjugate transform and divides by N.
void fft(std::vector<std::complex<double>>& data, bool inverse);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n) noexcept;

/// Cyclic (mod a.size()) convolution of two equal-length real vectors
/// via FFT. Negative rounding noise is clamped to zero — inputs are
/// probability vectors.
std::vector<double> cyclic_convolve(const std::vector<double>& a,
                                    const std::vector<double>& b);

/// O(M²) reference implementation for tests.
std::vector<double> cyclic_convolve_direct(const std::vector<double>& a,
                                           const std::vector<double>& b);

}  // namespace cksum::stats
