// Empirical checks of the paper's appendix theorems and headline
// qualitative claims, run end-to-end through the library.
#include <gtest/gtest.h>

#include "core/cellstats.hpp"
#include "core/experiments.hpp"
#include "core/splice_sim.hpp"
#include "fsgen/generator.hpp"
#include "net/fragment.hpp"
#include "stats/distribution.hpp"
#include "stats/uniformity.hpp"
#include "util/rng.hpp"

namespace cksum::core {
namespace {

using util::ByteView;
using util::Bytes;

// Theorem 6: over uniformly distributed data, the Internet checksum is
// uniformly distributed.
TEST(Theorem6, InternetChecksumUniformOverRandomData) {
  stats::Histogram h(65535);
  util::Rng rng(1);
  Bytes cell(48);
  for (int i = 0; i < 400000; ++i) {
    rng.fill(cell);
    h.add(alg::ones_canonical(alg::internet_sum(ByteView(cell))) % 65535u);
  }
  EXPECT_GT(stats::uniformity_p_value(h), 1e-4);
}

// Theorem 7: same for Fletcher (mod 256 version; mod 255's A/B live in
// 0..254 so its value space is 255², not the packed 16-bit space).
TEST(Theorem7, Fletcher256UniformOverRandomData) {
  stats::Histogram h(65536);
  util::Rng rng(2);
  Bytes cell(48);
  for (int i = 0; i < 400000; ++i) {
    rng.fill(cell);
    h.add(alg::fletcher_value(
        alg::fletcher_block(ByteView(cell), alg::FletcherMod::kTwos256)));
  }
  EXPECT_GT(stats::uniformity_p_value(h), 1e-4);
}

TEST(Theorem7, Fletcher255UniformOverItsValueSpace) {
  // Index a*255+b over the 255x255 space.
  stats::Histogram h(255 * 255);
  util::Rng rng(3);
  Bytes cell(48);
  for (int i = 0; i < 400000; ++i) {
    rng.fill(cell);
    const auto p = alg::fletcher_block(ByteView(cell),
                                       alg::FletcherMod::kOnes255);
    h.add(p.a * 255 + p.b);
  }
  EXPECT_GT(stats::uniformity_p_value(h), 1e-4);
}

// §4.3's headline observation: over REAL data, the cell checksum
// distribution is wildly non-uniform — the most common value occurs
// between 0.01% and a few percent of the time (uniform would be
// 0.0015%), and the top 0.1% of values take 1-5%+ of the mass.
TEST(Section4_3, RealDataCellDistributionIsSkewed) {
  const auto stats =
      collect_cell_stats(fsgen::profile("smeg.stanford.edu:/u1"), 0.5);
  const auto& h = stats.tcp_cells();
  EXPECT_GT(h.pmax(), 1e-4);                      // >= 0.01%
  EXPECT_GT(h.top_fraction_mass(0.001), 0.01);    // top 0.1% >= 1%
  EXPECT_LT(stats::uniformity_p_value(h), 1e-12); // decisively non-uniform
  // And the mode is (usually) zero.
  EXPECT_EQ(h.mode(), 0u);
}

// §4.4: real data's k-cell blocks stay more skewed than the iid
// convolution model predicts (local correlation).
TEST(Section4_4, MeasuredBlocksMoreSkewedThanIidPrediction) {
  CellStatsConfig cfg;
  cfg.ks = {1, 4};
  const auto stats =
      collect_cell_stats(fsgen::profile("sics.se:/src1"), 0.5, cfg);
  const auto d1 = stats::Distribution::from_histogram(stats.tcp_cells());
  const double predicted = d1.self_convolve(4).match_probability();
  const double measured = stats.tcp_blocks(4).match_probability();
  EXPECT_GT(measured, predicted);
}

// §4.6: local congruence probability exceeds global.
TEST(Section4_6, LocalCongruenceExceedsGlobal) {
  CellStatsConfig cfg;
  cfg.ks = {1, 2};
  const auto stats =
      collect_cell_stats(fsgen::profile("sics.se:/opt"), 0.5, cfg);
  const double global = stats.tcp_blocks(2).match_probability();
  const double local = stats.local(2).p_congruent();
  EXPECT_GT(local, global);
  // Identical blocks are the dominant source of congruence (the paper:
  // identical 20-40x more common than congruent-but-different), so
  // exclusion matters but leaves the rate above uniform.
  EXPECT_GT(stats.local(2).p_congruent_excluding_identical(), 1.0 / 65535.0);
}

// Theorem 10 (empirical form): trailer checksums miss no more splices
// than header checksums.
TEST(Theorem10, TrailerBeatsHeaderOnSpliceMisses) {
  net::PacketConfig header_cfg;
  net::PacketConfig trailer_cfg;
  trailer_cfg.placement = net::ChecksumPlacement::kTrailer;

  const auto& prof = fsgen::profile("sics.se:/opt");
  const SpliceStats h = run_profile(prof, header_cfg, 0.4);
  const SpliceStats t = run_profile(prof, trailer_cfg, 0.4);

  ASSERT_GT(h.remaining, 0u);
  ASSERT_GT(t.remaining, 0u);
  const double h_rate = static_cast<double>(h.missed_transport) /
                        static_cast<double>(h.remaining);
  const double t_rate = static_cast<double>(t.missed_transport) /
                        static_cast<double>(t.remaining);
  EXPECT_LE(t_rate, h_rate);
}

// The paper's central claim, end to end: on real data the TCP checksum
// misses splices at a rate far above the uniform-data expectation of
// 1/65535, while CRC-32 stays at (essentially) its uniform rate.
TEST(Headline, TcpChecksumFarWorseThanUniformOnRealData) {
  net::PacketConfig cfg;
  const SpliceStats st = run_profile(fsgen::profile("sics.se:/opt"), cfg, 0.4);
  ASSERT_GT(st.remaining, 100000u);
  const double tcp_rate = static_cast<double>(st.missed_transport) /
                          static_cast<double>(st.remaining);
  EXPECT_GT(tcp_rate, 5.0 / 65535.0)
      << "TCP misses should be well above the uniform-data rate";
  // CRC-32: expected misses ~ remaining / 2^32 ~ 0.
  EXPECT_LT(st.missed_crc, 5u);
}

// §6.3: inverting the stored checksum or not makes no material
// difference once the IP header is filled in.
TEST(Section6_3, InvertedVsNonInvertedEquivalent) {
  net::PacketConfig inv;
  net::PacketConfig raw;
  raw.invert_checksum = false;
  const auto& prof = fsgen::profile("sics.se:/src1");
  const SpliceStats a = run_profile(prof, inv, 0.3);
  const SpliceStats b = run_profile(prof, raw, 0.3);
  ASSERT_GT(a.remaining, 0u);
  const double ra = static_cast<double>(a.missed_transport) /
                    static_cast<double>(a.remaining);
  const double rb = static_cast<double>(b.missed_transport) /
                    static_cast<double>(b.remaining);
  // Same order of magnitude (both measure the same congruence events).
  EXPECT_LT(std::abs(ra - rb), 5 * std::max(ra, rb) + 1e-9);
}


// Colouring cross-check via the fragmentation error model: when
// substitutions preserve offsets (no reshuffling), Fletcher's splice
// advantage disappears — it and the TCP checksum miss at comparable
// rates on the same substitutions.
TEST(Colouring, FletcherAdvantageVanishesWithoutReshuffling) {
  const Bytes file = fsgen::generate_file(fsgen::FileKind::kGmonProfile, 77,
                                          200000);
  auto run = [&](alg::Algorithm transport) {
    net::FlowConfig flow;
    flow.segment_size = 1440;
    flow.packet.transport = transport;
    const auto pkts = net::segment_file(flow, ByteView(file));
    std::uint64_t remaining = 0, missed = 0;
    for (std::size_t i = 0; i + 1 < pkts.size(); ++i) {
      if (pkts[i].bytes.size() != pkts[i + 1].bytes.size()) continue;
      const auto f1 = net::fragment_datagram(pkts[i].ip_bytes(), 380);
      const auto f2 = net::fragment_datagram(pkts[i + 1].ip_bytes(), 380);
      const util::Bytes canonical = *net::reassemble(f1);
      const unsigned n = static_cast<unsigned>(f1.size());
      for (unsigned mask = 1; mask + 1 < (1u << n); ++mask) {
        auto mixed = f1;
        for (unsigned b = 0; b < n; ++b)
          if (mask & (1u << b)) mixed[b] = f2[b];
        const auto rebuilt = net::reassemble(std::move(mixed));
        bool identical = true;
        for (std::size_t k = 0; k < rebuilt->size() && identical; ++k) {
          if (k == net::kIpv4HeaderLen + 16) {
            ++k;
            continue;
          }
          identical = (*rebuilt)[k] == canonical[k];
        }
        if (identical) continue;
        ++remaining;
        if (net::verify_transport_checksum(flow.packet, ByteView(*rebuilt)))
          ++missed;
      }
    }
    return std::pair<std::uint64_t, std::uint64_t>{missed, remaining};
  };
  const auto [tcp_miss, tcp_rem] = run(alg::Algorithm::kInternet);
  const auto [f_miss, f_rem] = run(alg::Algorithm::kFletcher256);
  ASSERT_GT(tcp_rem, 0u);
  ASSERT_GT(tcp_miss, 0u);
  const double tcp_rate = double(tcp_miss) / double(tcp_rem);
  const double f_rate = double(f_miss) / double(f_rem);
  // Comparable rates (within 3x either way) — no positional rescue.
  EXPECT_LT(f_rate, 3.0 * tcp_rate);
  EXPECT_GT(f_rate, tcp_rate / 3.0);
}

}  // namespace
}  // namespace cksum::core
