#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "core/splice_sim.hpp"
#include "obs/snapshot.hpp"

namespace cksum::core {

std::string fmt_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_pct(double fraction_of_one) {
  const double pct = fraction_of_one * 100.0;
  char buf[48];
  if (pct == 0.0) {
    return "0";
  } else if (pct >= 0.01) {
    std::snprintf(buf, sizeof buf, "%.4f", pct);
  } else if (pct >= 1e-4) {
    std::snprintf(buf, sizeof buf, "%.6f", pct);
  } else {
    std::snprintf(buf, sizeof buf, "%.2e", pct);
  }
  return buf;
}

std::string fmt_pct(std::uint64_t num, std::uint64_t den) {
  if (den == 0) return "-";
  return fmt_pct(static_cast<double>(num) / static_cast<double>(den));
}

std::string fmt_sci(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2e", v);
  return buf;
}

std::string fmt_path_mix(std::uint64_t fast, std::uint64_t slow) {
  const std::uint64_t total = fast + slow;
  if (total == 0) return "no splices evaluated";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4f%% fast path",
                100.0 * static_cast<double>(fast) / static_cast<double>(total));
  return std::string(buf) + " (" + fmt_count(slow) + " slow)";
}

std::string splice_stats_json(const SpliceStats& st,
                              std::string_view transport_name) {
  std::string out = "{";
  const auto field = [&](std::string_view key, std::uint64_t v) {
    if (out.size() > 1) out += ", ";
    out += "\"" + std::string(key) + "\": " + std::to_string(v);
  };
  out += "\"transport\": \"" + obs::json_escape(transport_name) + "\"";
  field("files", st.files);
  field("packets", st.packets);
  field("pairs", st.pairs);
  field("splices", st.total);
  field("caught_by_header", st.caught_by_header);
  field("identical", st.identical);
  field("remaining", st.remaining);
  field("missed_crc", st.missed_crc);
  field("missed_transport", st.missed_transport);
  field("missed_both", st.missed_both);
  field("missed_koopman_dual", st.missed_koopman_dual);
  field("missed_koopman_single", st.missed_koopman_single);
  field("fail_identical", st.fail_identical);
  field("pass_identical", st.pass_identical);
  field("fail_changed", st.fail_changed);
  field("pass_changed", st.pass_changed);
  field("remaining_with_hdr2", st.remaining_with_hdr2);
  field("missed_with_hdr2", st.missed_with_hdr2);
  field("fast_path", st.fast_path);
  field("slow_path", st.slow_path);
  {
    const std::uint64_t evaluated = st.fast_path + st.slow_path;
    char frac[32];
    std::snprintf(frac, sizeof frac, "%.8f",
                  evaluated == 0 ? 0.0
                                 : static_cast<double>(st.fast_path) /
                                       static_cast<double>(evaluated));
    out += ", \"fast_path_fraction\": " + std::string(frac);
  }
  const auto array = [&](std::string_view key,
                         const std::array<std::uint64_t, kMaxTrackedK>& a) {
    out += ", \"" + std::string(key) + "\": [";
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(a[i]);
    }
    out += "]";
  };
  array("remaining_by_k", st.remaining_by_k);
  array("missed_by_k", st.missed_by_k);
  out += "}";
  return out;
}

TextTable::TextTable(std::vector<std::string> header) {
  columns_ = header.size();
  rows_.push_back({std::move(header), false});
  rows_.push_back({{}, true});
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("TextTable::add_row: column count mismatch");
  rows_.push_back({std::move(cells), false});
}

void TextTable::add_separator() { rows_.push_back({{}, true}); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_, 0);
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < columns_; ++c)
      width[c] = std::max(width[c], r.cells[c].size());
  }
  for (const Row& r : rows_) {
    if (r.separator) {
      for (std::size_t c = 0; c < columns_; ++c) {
        os << std::string(width[c] + (c == 0 ? 0 : 2), '-');
      }
      os << '\n';
      continue;
    }
    for (std::size_t c = 0; c < columns_; ++c) {
      const std::string& cell = r.cells[c];
      if (c == 0) {
        os << cell << std::string(width[0] - cell.size(), ' ');
      } else {
        os << "  " << std::string(width[c] - cell.size(), ' ') << cell;
      }
    }
    os << '\n';
  }
}

}  // namespace cksum::core
