#include "compress/lzw.hpp"

#include <string>
#include <unordered_map>
#include <vector>

namespace cksum::compress {

namespace {

constexpr char kMagic[4] = {'L', 'Z', 'W', '1'};

/// LSB-first variable-width bit packer.
class BitWriter {
 public:
  explicit BitWriter(util::Bytes& out) : out_(out) {}

  void put(std::uint32_t code, int width) {
    acc_ |= static_cast<std::uint64_t>(code) << nbits_;
    nbits_ += width;
    while (nbits_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }

  void flush() {
    if (nbits_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      nbits_ = 0;
    }
  }

 private:
  util::Bytes& out_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(util::ByteView in) : in_(in) {}

  /// Returns false at clean end-of-stream (not enough bits remain).
  bool get(std::uint32_t& code, int width) {
    while (nbits_ < width) {
      if (pos_ >= in_.size()) return false;
      acc_ |= static_cast<std::uint64_t>(in_[pos_++]) << nbits_;
      nbits_ += 8;
    }
    code = static_cast<std::uint32_t>(acc_ & ((1u << width) - 1u));
    acc_ >>= width;
    nbits_ -= width;
    return true;
  }

 private:
  util::ByteView in_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

}  // namespace

util::Bytes lzw_compress(util::ByteView input) {
  util::Bytes out;
  out.reserve(input.size() / 2 + 16);
  out.insert(out.end(), kMagic, kMagic + 4);
  BitWriter bw(out);

  // Dictionary: (prefix code << 8 | next byte) -> code.
  std::unordered_map<std::uint32_t, std::uint32_t> dict;
  dict.reserve(1u << 16);
  std::uint32_t next_code = kFirstCode;
  int width = kMinWidth;

  auto reset = [&] {
    dict.clear();
    next_code = kFirstCode;
    width = kMinWidth;
  };

  std::uint32_t prefix = 0;
  bool have_prefix = false;
  for (std::uint8_t byte : input) {
    if (!have_prefix) {
      prefix = byte;
      have_prefix = true;
      continue;
    }
    const std::uint32_t key = (prefix << 8) | byte;
    const auto it = dict.find(key);
    if (it != dict.end()) {
      prefix = it->second;
      continue;
    }
    bw.put(prefix, width);
    dict.emplace(key, next_code);
    // Widen when next_code no longer fits (emitter widens first so the
    // decoder can mirror the schedule exactly).
    if (next_code == (1u << width) && width < kMaxWidth) ++width;
    ++next_code;
    if (next_code == (1u << kMaxWidth)) {
      bw.put(kClearCode, width);
      reset();
    }
    prefix = byte;
  }
  if (have_prefix) bw.put(prefix, width);
  bw.put(kStopCode, width);
  bw.flush();
  return out;
}

util::Bytes lzw_decompress(util::ByteView input) {
  if (input.size() < 4 || !std::equal(kMagic, kMagic + 4, input.begin()))
    throw CorruptStream("lzw: bad magic");
  BitReader br(input.subspan(4));

  // Dictionary entries as (prefix code, appended byte); strings are
  // reconstructed by walking prefixes.
  std::vector<std::pair<std::uint32_t, std::uint8_t>> dict;
  std::uint32_t next_code = kFirstCode;
  int width = kMinWidth;

  auto reset = [&] {
    dict.clear();
    next_code = kFirstCode;
    width = kMinWidth;
  };

  auto expand = [&](std::uint32_t code, util::Bytes& out) {
    // Expand code to its byte string, appended to out.
    std::uint8_t stack[1 << kMaxWidth];
    std::size_t depth = 0;
    while (code >= kFirstCode) {
      const auto index = code - kFirstCode;
      if (index >= dict.size()) throw CorruptStream("lzw: bad code chain");
      stack[depth++] = dict[index].second;
      code = dict[index].first;
    }
    out.push_back(static_cast<std::uint8_t>(code));
    while (depth > 0) out.push_back(stack[--depth]);
    return static_cast<std::uint8_t>(code);  // first byte of the string
  };

  util::Bytes out;
  std::uint32_t code = 0;
  bool have_prev = false;
  std::uint32_t prev = 0;
  while (br.get(code, width)) {
    if (code == kStopCode) return out;
    if (code == kClearCode) {
      reset();
      have_prev = false;
      continue;
    }
    if (code > kFirstCode + dict.size())
      throw CorruptStream("lzw: code out of range");

    std::uint8_t first_byte;
    if (code == kFirstCode + dict.size()) {
      // The K-omega case: the code about to be defined.
      if (!have_prev) throw CorruptStream("lzw: K-omega with no prefix");
      first_byte = expand(prev, out);
      out.push_back(first_byte);
    } else {
      first_byte = expand(code, out);
    }

    if (have_prev) {
      dict.emplace_back(prev, first_byte);
      // The decoder defines each entry one code later than the
      // encoder, so it must widen one entry earlier to stay in sync
      // with the encoder's width schedule.
      if (next_code + 1 == (1u << width) && width < kMaxWidth) ++width;
      ++next_code;
    }
    prev = code;
    have_prev = true;
  }
  throw CorruptStream("lzw: missing stop code");
}

}  // namespace cksum::compress
