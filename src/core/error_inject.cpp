#include "core/error_inject.hpp"

#include <cassert>

namespace cksum::core {

namespace {
void flip_bit(std::span<std::uint8_t> data, std::size_t bit) {
  data[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
}
}  // namespace

void apply_burst(std::span<std::uint8_t> data, const BurstSpec& burst) {
  assert(burst.length_bits >= 1 && burst.length_bits <= 64);
  assert(burst.bit_offset + burst.length_bits <= 8 * data.size());
  for (unsigned b = 0; b < burst.length_bits; ++b) {
    if (burst.pattern & (1ULL << b)) flip_bit(data, burst.bit_offset + b);
  }
}

BurstSpec random_burst(util::Rng& rng, std::size_t data_bits,
                       unsigned length_bits) {
  assert(length_bits >= 1 && length_bits <= 64);
  assert(data_bits >= length_bits);
  BurstSpec spec;
  spec.length_bits = length_bits;
  spec.bit_offset = rng.below(data_bits - length_bits + 1);
  if (length_bits == 1) {
    spec.pattern = 1;
  } else if (length_bits == 64) {
    spec.pattern = rng.next() | 1ULL | (1ULL << 63);
  } else {
    spec.pattern = (rng.next() & ((1ULL << length_bits) - 1)) | 1ULL |
                   (1ULL << (length_bits - 1));
  }
  return spec;
}

void apply_double_bit(std::span<std::uint8_t> data, std::size_t first_bit,
                      std::size_t gap_bits) {
  assert(first_bit + gap_bits < 8 * data.size());
  flip_bit(data, first_bit);
  flip_bit(data, first_bit + gap_bits);
}

}  // namespace cksum::core
