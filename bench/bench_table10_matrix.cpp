// Table 10: Header vs Trailer checksum failure rates on smeg:/u1 —
// the 2x2 matrix of (checksum verdict x data-identical verdict):
//
//   "Fails checksum, data identical"  — benign false positive: the
//        trailer checksum rejects splices whose payload happened to
//        reproduce an original packet (costs a retransmission that
//        was due anyway); the header checksum never does.
//   "Passes checksum, data changed"   — undetected corruption; the
//        trailer sum's extra colour makes this ~30x rarer.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

using namespace cksum;

int main() {
  const double scale = core::scale_from_env();
  const auto& prof = fsgen::profile("smeg.stanford.edu:/u1");

  net::PacketConfig header_cfg;
  net::PacketConfig trailer_cfg;
  trailer_cfg.placement = net::ChecksumPlacement::kTrailer;
  const core::SpliceStats h = core::run_profile(prof, header_cfg, scale);
  const core::SpliceStats t = core::run_profile(prof, trailer_cfg, scale);

  std::printf(
      "== Table 10: header vs trailer checksum failure rates "
      "(smeg:/u1) ==\n\n");
  core::TextTable table({"False positive/negative", "header", "trailer"});
  table.add_row({"Fails checksum, data identical",
                 core::fmt_count(h.fail_identical),
                 core::fmt_count(t.fail_identical)});
  table.add_row({"Passes checksum, data changed",
                 core::fmt_count(h.pass_changed),
                 core::fmt_count(t.pass_changed)});
  table.add_separator();
  const auto denom_h = h.identical + h.remaining;
  const auto denom_t = t.identical + t.remaining;
  table.add_row({"Fails checksum, data identical (%)",
                 core::fmt_pct(h.fail_identical, denom_h),
                 core::fmt_pct(t.fail_identical, denom_t)});
  table.add_row({"Passes checksum, data changed (%)",
                 core::fmt_pct(h.pass_changed, denom_h),
                 core::fmt_pct(t.pass_changed, denom_t)});
  table.print(std::cout);
  std::printf(
      "\nExpected shape (paper): header column: 0 false positives, many "
      "misses; trailer column: many (benign) false positives, ~3%% of the "
      "header column's misses.\n");
  return 0;
}
