// Trace-lab conformance tier (docs/TRACE.md): util::PcapWriter and
// trace::PcapReader must round-trip captures on both supported link
// types, the reader must reject every corrupted capture with a
// targeted reason (never by faulting), and a capture of a synthetic
// flow must ingest into SimPackets — and a sealed corpus — bitwise
// identical to the in-memory packetisation path.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "core/splice_sim.hpp"
#include "fsgen/corpus_store.hpp"
#include "fsgen/profile.hpp"
#include "net/flow.hpp"
#include "trace/ingest.hpp"
#include "trace/pcap_reader.hpp"
#include "trace/profile.hpp"
#include "util/pcap.hpp"

namespace cksum {
namespace {

void append_le32(util::Bytes& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_be32(util::Bytes& b, std::uint32_t v) {
  for (int i = 3; i >= 0; --i)
    b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_le16(util::Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void append_be16(util::Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}

/// Hand-built native-order global header (magic 0xa1b2c3d4, v2.4).
util::Bytes native_header(std::uint32_t snaplen = 65535,
                          std::uint32_t linktype = trace::kLinkRaw) {
  util::Bytes b;
  append_le32(b, 0xa1b2c3d4u);
  append_le16(b, 2);
  append_le16(b, 4);
  append_le32(b, 0);  // thiszone
  append_le32(b, 0);  // sigfigs
  append_le32(b, snaplen);
  append_le32(b, linktype);
  return b;
}

void append_record(util::Bytes& b, util::ByteView payload,
                   std::uint32_t original_len) {
  append_le32(b, 0);  // ts_sec
  append_le32(b, 0);  // ts_frac
  append_le32(b, static_cast<std::uint32_t>(payload.size()));
  append_le32(b, original_len);
  b.insert(b.end(), payload.begin(), payload.end());
}

/// Capture every segment of every file of `fs` under `flow`, the same
/// loop `cksumlab pcap` runs.
util::Bytes capture_filesystem(const fsgen::Filesystem& fs,
                               const net::FlowConfig& flow,
                               util::PcapLink link) {
  std::ostringstream os;
  util::PcapWriter w(os, link);
  for (std::size_t f = 0; f < fs.file_count(); ++f) {
    const util::Bytes file = fs.file(f);
    for (const auto& p : net::segment_file(flow, util::ByteView(file)))
      EXPECT_TRUE(w.write_packet(p.ip_bytes()));
  }
  EXPECT_TRUE(w.ok());
  const std::string s = os.str();
  return util::Bytes(s.begin(), s.end());
}

util::Bytes read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return util::Bytes(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::string parse_error(util::Bytes capture) {
  std::string err;
  const auto r = trace::PcapReader::parse(std::move(capture), &err);
  EXPECT_EQ(r, nullptr);
  return err;
}

// ---------------------------------------------------------------------------
// Writer -> reader round trip.
// ---------------------------------------------------------------------------

TEST(PcapRoundTrip, RawLink) {
  const net::FlowConfig flow = core::paper_flow_config();
  const util::Bytes file = fsgen::generate_file(
      fsgen::kAllKinds[0], /*seed=*/7, /*size=*/1500);
  const auto pkts = net::segment_file(flow, util::ByteView(file));
  ASSERT_GT(pkts.size(), 1u);

  std::ostringstream os;
  util::PcapWriter w(os, util::PcapLink::kRaw);
  for (const auto& p : pkts) ASSERT_TRUE(w.write_packet(p.ip_bytes()));
  EXPECT_EQ(w.packets_written(), pkts.size());

  const std::string s = os.str();
  std::string err;
  const auto r =
      trace::PcapReader::parse(util::Bytes(s.begin(), s.end()), &err);
  ASSERT_NE(r, nullptr) << err;
  EXPECT_EQ(r->info().linktype, trace::kLinkRaw);
  EXPECT_FALSE(r->info().swapped);
  EXPECT_EQ(r->info().records, pkts.size());
  EXPECT_EQ(r->info().datagrams, pkts.size());
  EXPECT_EQ(r->info().truncated, 0u);
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    const trace::TraceRecord& rec = r->record(i);
    EXPECT_EQ(rec.cls, trace::RecordClass::kDatagram);
    EXPECT_FALSE(rec.truncated);
    const util::ByteView want = pkts[i].ip_bytes();
    ASSERT_EQ(rec.datagram.size(), want.size());
    EXPECT_EQ(0, std::memcmp(rec.datagram.data(), want.data(), want.size()));
  }
}

TEST(PcapRoundTrip, EthernetLink) {
  const net::FlowConfig flow = core::paper_flow_config();
  const util::Bytes file = fsgen::generate_file(
      fsgen::kAllKinds[0], /*seed=*/9, /*size=*/900);
  const auto pkts = net::segment_file(flow, util::ByteView(file));
  ASSERT_FALSE(pkts.empty());

  std::ostringstream os;
  util::PcapWriter w(os, util::PcapLink::kEthernet);
  for (const auto& p : pkts) ASSERT_TRUE(w.write_packet(p.ip_bytes()));

  const std::string s = os.str();
  std::string err;
  const auto r =
      trace::PcapReader::parse(util::Bytes(s.begin(), s.end()), &err);
  ASSERT_NE(r, nullptr) << err;
  EXPECT_EQ(r->info().linktype, trace::kLinkEthernet);
  EXPECT_EQ(r->info().datagrams, pkts.size());
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    const trace::TraceRecord& rec = r->record(i);
    ASSERT_EQ(rec.cls, trace::RecordClass::kDatagram);
    // 14-byte Ethernet II header precedes the datagram.
    EXPECT_EQ(rec.frame.size(), pkts[i].ip_bytes().size() + 14);
    ASSERT_EQ(rec.datagram.size(), pkts[i].ip_bytes().size());
    EXPECT_EQ(0, std::memcmp(rec.datagram.data(), pkts[i].ip_bytes().data(),
                             rec.datagram.size()));
  }
}

TEST(PcapRoundTrip, EmptyCapture) {
  std::ostringstream os;
  util::PcapWriter w(os);
  EXPECT_EQ(w.packets_written(), 0u);
  const std::string s = os.str();
  EXPECT_EQ(s.size(), 24u);
  std::string err;
  const auto r =
      trace::PcapReader::parse(util::Bytes(s.begin(), s.end()), &err);
  ASSERT_NE(r, nullptr) << err;
  EXPECT_EQ(r->info().records, 0u);
  EXPECT_EQ(r->record_count(), 0u);
}

TEST(PcapRoundTrip, ByteSwappedCapture) {
  // A capture written on a big-endian host: every header field in
  // big-endian order under the swapped-magic signature.
  util::Bytes b;
  append_be32(b, 0xa1b2c3d4u);  // reads back as 0xd4c3b2a1 -> swapped
  append_be16(b, 2);
  append_be16(b, 4);
  append_be32(b, 0);
  append_be32(b, 0);
  append_be32(b, 65535);
  append_be32(b, trace::kLinkRaw);
  const util::Bytes payload = {0x45, 0x00, 0x00, 0x04};
  append_be32(b, 11);  // ts_sec
  append_be32(b, 22);  // ts_frac
  append_be32(b, static_cast<std::uint32_t>(payload.size()));
  append_be32(b, static_cast<std::uint32_t>(payload.size()));
  b.insert(b.end(), payload.begin(), payload.end());

  std::string err;
  const auto r = trace::PcapReader::parse(std::move(b), &err);
  ASSERT_NE(r, nullptr) << err;
  EXPECT_TRUE(r->info().swapped);
  EXPECT_EQ(r->info().snaplen, 65535u);
  EXPECT_EQ(r->info().linktype, trace::kLinkRaw);
  ASSERT_EQ(r->record_count(), 1u);
  EXPECT_EQ(r->record(0).ts_sec, 11u);
  EXPECT_EQ(r->record(0).ts_frac, 22u);
  EXPECT_EQ(r->record(0).captured_len, 4u);
}

TEST(PcapRoundTrip, NanosecondMagic) {
  util::Bytes b = native_header();
  b[3] = 0xa1; b[2] = 0xb2; b[1] = 0x3c; b[0] = 0x4d;  // 0xa1b23c4d LE
  std::string err;
  const auto r = trace::PcapReader::parse(std::move(b), &err);
  ASSERT_NE(r, nullptr) << err;
  EXPECT_TRUE(r->info().nanos);
  EXPECT_FALSE(r->info().swapped);
}

TEST(PcapRoundTrip, SnapTruncationSurfacedPerRecord) {
  util::Bytes b = native_header();
  const util::Bytes payload(40, 0xaa);
  append_record(b, util::ByteView(payload), /*original_len=*/1500);
  std::string err;
  const auto r = trace::PcapReader::parse(std::move(b), &err);
  ASSERT_NE(r, nullptr) << err;
  ASSERT_EQ(r->record_count(), 1u);
  EXPECT_TRUE(r->record(0).truncated);
  EXPECT_EQ(r->info().truncated, 1u);
}

TEST(PcapRoundTrip, EthernetClassification) {
  util::Bytes b = native_header(65535, trace::kLinkEthernet);
  // Record 0: frame shorter than the 14-byte Ethernet header.
  const util::Bytes runt(8, 0x55);
  append_record(b, util::ByteView(runt), 8);
  // Record 1: ARP ethertype (0x0806) — not an IPv4 datagram.
  util::Bytes arp(20, 0x00);
  arp[12] = 0x08;
  arp[13] = 0x06;
  append_record(b, util::ByteView(arp), 20);
  std::string err;
  const auto r = trace::PcapReader::parse(std::move(b), &err);
  ASSERT_NE(r, nullptr) << err;
  ASSERT_EQ(r->record_count(), 2u);
  EXPECT_EQ(r->record(0).cls, trace::RecordClass::kLinkTooShort);
  EXPECT_EQ(r->record(1).cls, trace::RecordClass::kNonIpv4);
  EXPECT_EQ(r->info().datagrams, 0u);
}

// ---------------------------------------------------------------------------
// Corruption matrix: every malformed capture is diagnosed, not crashed
// on, and the reason names the violated invariant.
// ---------------------------------------------------------------------------

TEST(PcapCorruption, TruncatedGlobalHeader) {
  util::Bytes b = native_header();
  b.resize(10);
  EXPECT_NE(parse_error(std::move(b)).find("shorter than the pcap global"),
            std::string::npos);
  EXPECT_NE(parse_error(util::Bytes{}).find("shorter than the pcap global"),
            std::string::npos);
}

TEST(PcapCorruption, BadMagic) {
  util::Bytes b = native_header();
  b[0] = 0xde;
  const std::string err = parse_error(std::move(b));
  EXPECT_NE(err.find("bad magic"), std::string::npos);
  EXPECT_NE(err.find("not a classic pcap capture"), std::string::npos);
}

TEST(PcapCorruption, UnsupportedVersion) {
  util::Bytes b = native_header();
  b[4] = 3;  // version_major
  EXPECT_NE(parse_error(std::move(b)).find("unsupported pcap version 3"),
            std::string::npos);
}

TEST(PcapCorruption, AbsurdSnaplen) {
  util::Bytes zero = native_header(0);
  EXPECT_NE(parse_error(std::move(zero)).find("absurd snap length 0"),
            std::string::npos);
  util::Bytes huge = native_header(1u << 21);
  EXPECT_NE(parse_error(std::move(huge)).find("absurd snap length"),
            std::string::npos);
}

TEST(PcapCorruption, UnsupportedLinkType) {
  util::Bytes b = native_header(65535, /*linktype=*/147);
  EXPECT_NE(parse_error(std::move(b)).find("unsupported link type 147"),
            std::string::npos);
}

TEST(PcapCorruption, TruncatedRecordHeader) {
  util::Bytes b = native_header();
  const util::Bytes payload(4, 0x11);
  append_record(b, util::ByteView(payload), 4);
  b.resize(b.size() + 7);  // 7 stray bytes: a second header cut short
  const std::string err = parse_error(std::move(b));
  EXPECT_NE(err.find("truncated record header (record 1"), std::string::npos);
  EXPECT_NE(err.find("7 of 16 bytes"), std::string::npos);
}

TEST(PcapCorruption, CapturedExceedsSnaplen) {
  util::Bytes b = native_header(/*snaplen=*/64);
  const util::Bytes payload(100, 0x22);
  append_record(b, util::ByteView(payload), 100);
  const std::string err = parse_error(std::move(b));
  EXPECT_NE(err.find("captured length 100 exceeds the snap length 64"),
            std::string::npos);
}

TEST(PcapCorruption, MidRecordEof) {
  util::Bytes b = native_header();
  const util::Bytes payload(64, 0x33);
  append_record(b, util::ByteView(payload), 64);
  b.resize(b.size() - 10);  // cut the record body short
  const std::string err = parse_error(std::move(b));
  EXPECT_NE(err.find("mid-record EOF"), std::string::npos);
  EXPECT_NE(err.find("promises 64 bytes, 54 remain"), std::string::npos);
}

TEST(PcapCorruption, OriginalShorterThanCaptured) {
  util::Bytes b = native_header();
  const util::Bytes payload(32, 0x44);
  append_record(b, util::ByteView(payload), /*original_len=*/16);
  EXPECT_NE(parse_error(std::move(b)).find("shorter than captured"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// PcapWriter failure accounting (the packets_written contract).
// ---------------------------------------------------------------------------

TEST(PcapWriterGuard, DeadStreamWritesNothing) {
  std::ostringstream os;
  os.setstate(std::ios::badbit);
  util::PcapWriter w(os);
  EXPECT_FALSE(w.ok());
  const util::Bytes pkt(40, 0x45);
  EXPECT_FALSE(w.write_packet(util::ByteView(pkt)));
  EXPECT_EQ(w.packets_written(), 0u);
}

TEST(PcapWriterGuard, MidStreamFailureStopsTheCount) {
  std::ostringstream os;
  util::PcapWriter w(os);
  const util::Bytes pkt(40, 0x45);
  ASSERT_TRUE(w.write_packet(util::ByteView(pkt)));
  EXPECT_EQ(w.packets_written(), 1u);
  // The sink dies; packets_written must not over-report what landed.
  os.setstate(std::ios::badbit);
  EXPECT_FALSE(w.write_packet(util::ByteView(pkt)));
  EXPECT_FALSE(w.write_packet(util::ByteView(pkt)));  // failure is sticky
  EXPECT_EQ(w.packets_written(), 1u);
  EXPECT_FALSE(w.ok());
}

// ---------------------------------------------------------------------------
// Ingest: capture -> PDU model, bitwise-equal to the in-memory path.
// ---------------------------------------------------------------------------

TEST(Ingest, CaptureMatchesPacketizeFile) {
  const net::FlowConfig flow = core::paper_flow_config();
  const fsgen::Filesystem fs(fsgen::profile("nsc05"), 0.05);
  util::Bytes cap =
      capture_filesystem(fs, flow, util::PcapLink::kEthernet);
  std::string err;
  const auto r = trace::PcapReader::parse(std::move(cap), &err);
  ASSERT_NE(r, nullptr) << err;

  trace::IngestConfig icfg;
  icfg.flow = flow;
  const trace::IngestResult res = trace::ingest_capture(*r, icfg);
  EXPECT_EQ(res.counts.records, r->info().records);
  EXPECT_EQ(res.counts.rejected, 0u);
  EXPECT_EQ(res.counts.accepted, r->info().records);
  ASSERT_EQ(res.files.size(), fs.file_count());

  // Sealing both sides must produce byte-identical stores: the
  // capture-ingested SimPackets carry exactly what packetize_file
  // computes, and build_corpus persists nothing else.
  fsgen::CorpusBuildParams params;
  params.profile = "parity";
  params.scale = 0.05;
  params.flow = flow;
  const std::string mem_path = "trace_parity_mem.ckcorp";
  const std::string cap_path = "trace_parity_cap.ckcorp";
  ASSERT_TRUE(fsgen::build_corpus(params, fs, mem_path, &err)) << err;
  ASSERT_TRUE(fsgen::build_corpus(params, res.files, cap_path, &err)) << err;
  const util::Bytes a = read_all(mem_path);
  const util::Bytes b = read_all(cap_path);
  std::remove(mem_path.c_str());
  std::remove(cap_path.c_str());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Ingest, SpliceReportParity) {
  const net::FlowConfig flow = core::paper_flow_config();
  const fsgen::Filesystem fs(fsgen::profile("nsc05"), 0.05);
  util::Bytes cap = capture_filesystem(fs, flow, util::PcapLink::kRaw);
  std::string err;
  const auto r = trace::PcapReader::parse(std::move(cap), &err);
  ASSERT_NE(r, nullptr) << err;
  trace::IngestConfig icfg;
  icfg.flow = flow;
  const trace::IngestResult res = trace::ingest_capture(*r, icfg);

  fsgen::CorpusBuildParams params;
  params.profile = "parity";
  params.scale = 0.05;
  params.flow = flow;
  const std::string path = "trace_splice_parity.ckcorp";
  ASSERT_TRUE(fsgen::build_corpus(params, res.files, path, &err)) << err;
  const auto store = fsgen::CorpusReader::open(path, &err);
  ASSERT_NE(store, nullptr) << err;
  // Readahead is advisory; asking for everything up front must not
  // perturb the result (run_corpus_range calls it per lease anyway).
  store->advise_will_need(0, store->file_count());

  core::SpliceRunConfig cfg;
  cfg.flow = flow;
  cfg.threads = 1;
  const core::SpliceStats mem = core::run_filesystem(cfg, fs);
  const core::SpliceStats streamed = core::run_corpus(cfg, *store);
  std::remove(path.c_str());
  EXPECT_EQ(core::splice_stats_json(mem, "tcp"),
            core::splice_stats_json(streamed, "tcp"));
}

TEST(Ingest, OrphanBeforeFirstFlowStart) {
  const net::FlowConfig flow = core::paper_flow_config();
  const util::Bytes file = fsgen::generate_file(
      fsgen::kAllKinds[0], /*seed=*/3, /*size=*/1200);
  const auto pkts = net::segment_file(flow, util::ByteView(file));
  ASSERT_GT(pkts.size(), 2u);
  // Capture joins the flow mid-transfer: the first datagram carries a
  // non-initial sequence number and has no file to belong to.
  util::Bytes b = native_header();
  for (std::size_t i = 1; i < pkts.size(); ++i)
    append_record(b, pkts[i].ip_bytes(),
                  static_cast<std::uint32_t>(pkts[i].ip_bytes().size()));
  std::string err;
  const auto r = trace::PcapReader::parse(std::move(b), &err);
  ASSERT_NE(r, nullptr) << err;
  trace::IngestConfig icfg;
  icfg.flow = flow;
  const trace::IngestResult res = trace::ingest_capture(*r, icfg);
  EXPECT_EQ(res.counts.orphan, pkts.size() - 1);
  EXPECT_EQ(res.counts.accepted, 0u);
  EXPECT_TRUE(res.files.empty());
  EXPECT_EQ(res.counts.records,
            res.counts.accepted + res.counts.rejected);
}

TEST(Ingest, RejectsCorruptedChecksumAndTruncatedRecords) {
  const net::FlowConfig flow = core::paper_flow_config();
  const util::Bytes file = fsgen::generate_file(
      fsgen::kAllKinds[0], /*seed=*/5, /*size=*/700);
  const auto pkts = net::segment_file(flow, util::ByteView(file));
  ASSERT_GT(pkts.size(), 1u);
  util::Bytes b = native_header();
  // Record 0: intact flow start.
  append_record(b, pkts[0].ip_bytes(),
                static_cast<std::uint32_t>(pkts[0].ip_bytes().size()));
  // Record 1: one payload byte flipped — the transport checksum no
  // longer verifies.
  util::Bytes bad(pkts[1].ip_bytes().begin(), pkts[1].ip_bytes().end());
  bad[45] ^= 0x01;
  append_record(b, util::ByteView(bad),
                static_cast<std::uint32_t>(bad.size()));
  // Record 2: snap-length-cut copy of the same packet.
  append_record(b, pkts[1].ip_bytes().subspan(0, 40),
                static_cast<std::uint32_t>(pkts[1].ip_bytes().size()));
  std::string err;
  const auto r = trace::PcapReader::parse(std::move(b), &err);
  ASSERT_NE(r, nullptr) << err;
  trace::IngestConfig icfg;
  icfg.flow = flow;
  const trace::IngestResult res = trace::ingest_capture(*r, icfg);
  EXPECT_EQ(res.counts.accepted, 1u);
  EXPECT_EQ(res.counts.checksum_fail, 1u);
  EXPECT_EQ(res.counts.truncated, 1u);
  EXPECT_EQ(res.counts.records,
            res.counts.accepted + res.counts.rejected);
  ASSERT_EQ(res.files.size(), 1u);
  EXPECT_EQ(res.files[0].size(), 1u);
}

// ---------------------------------------------------------------------------
// Data profile.
// ---------------------------------------------------------------------------

TEST(DataProfile, CountsRunsWordsAndCells) {
  trace::DataProfile prof;
  util::Bytes payload(100, 0x00);
  payload.insert(payload.end(), 4, 0xFF);
  payload.push_back('a');
  payload.push_back('b');
  prof.add_payload(util::ByteView(payload));

  EXPECT_EQ(prof.bytes(), 106u);
  EXPECT_EQ(prof.zero_runs().runs, 1u);
  EXPECT_EQ(prof.zero_runs().max_run, 100u);
  EXPECT_EQ(prof.ff_runs().runs, 1u);
  EXPECT_EQ(prof.ff_runs().max_run, 4u);
  EXPECT_NEAR(prof.byte_fraction(0x00), 100.0 / 106.0, 1e-12);
  // 53 non-overlapping big-endian words; the first 50 are 0x0000.
  EXPECT_EQ(prof.word_values().count(0x0000), 50u);
  EXPECT_EQ(prof.word_values().count(0xFFFF), 2u);
  // Two full 48-byte cells (the 10-byte tail is skipped); both lie in
  // the first 100 zero bytes, so both land in congruence class 0.
  EXPECT_EQ(prof.cells(), 2u);
  EXPECT_EQ(prof.cell_checksums().count(0), 2u);
  // Runs do not continue across packets.
  prof.add_payload(util::ByteView(payload));
  EXPECT_EQ(prof.zero_runs().runs, 2u);
  EXPECT_EQ(prof.zero_runs().max_run, 100u);
}

TEST(DataProfile, JsonIsWellFormedAndComplete) {
  trace::DataProfile prof;
  const util::Bytes payload(96, 0x5a);
  prof.add_payload(util::ByteView(payload));
  const std::string j = prof.json();
  for (const char* key :
       {"\"bytes\"", "\"byte_entropy_bits\"", "\"word_entropy_bits\"",
        "\"zero_fraction\"", "\"zero_runs\"", "\"max_zero_run\"",
        "\"ff_runs\"", "\"max_ff_run\"", "\"cells\"",
        "\"cell_entropy_bits\"", "\"cell_pmax\"", "\"cell_mode\""})
    EXPECT_NE(j.find(key), std::string::npos) << key;
  EXPECT_NE(j.find("\"bytes\": 96"), std::string::npos);
  EXPECT_NE(j.find("\"cells\": 2"), std::string::npos);
}

}  // namespace
}  // namespace cksum
