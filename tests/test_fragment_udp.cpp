// IPv4 fragmentation/reassembly and UDP.
#include <gtest/gtest.h>

#include "net/fragment.hpp"
#include "net/packet.hpp"
#include "net/slip.hpp"
#include "net/udp.hpp"
#include "util/rng.hpp"

namespace cksum::net {
namespace {

using util::ByteView;
using util::Bytes;

Bytes payload_bytes(std::size_t n, std::uint64_t seed = 1) {
  Bytes b(n);
  util::Rng rng(seed);
  rng.fill(b);
  return b;
}

Packet tcp_packet(std::size_t payload_len, std::uint32_t seq = 1) {
  PacketConfig cfg;
  const Bytes payload = payload_bytes(payload_len, seq);
  return build_packet(cfg, seq, static_cast<std::uint16_t>(seq), ByteView(payload));
}

/// The datagram as reassembly canonically rebuilds it: fragment bits
/// (including DF, which fragmentation necessarily drops) cleared and
/// the IP header checksum recomputed.
Bytes defragmented_form(const Bytes& datagram) {
  Bytes out = datagram;
  auto hdr = *Ipv4Header::parse(ByteView(out));
  hdr.frag_off = 0;
  hdr.header_checksum = 0;
  hdr.header_checksum = hdr.compute_checksum();
  hdr.write(out.data());
  return out;
}

class FragmentMtu : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FragmentMtu, RoundTrip) {
  const std::size_t mtu = GetParam();
  const Packet pkt = tcp_packet(1472);
  const auto frags = fragment_datagram(pkt.ip_bytes(), mtu);
  ASSERT_GE(frags.size(), 2u);
  // Fragment invariants.
  for (std::size_t i = 0; i < frags.size(); ++i) {
    EXPECT_LE(frags[i].payload.size() + kIpv4HeaderLen, mtu);
    if (i + 1 < frags.size()) {
      EXPECT_TRUE(frags[i].more_fragments());
      EXPECT_EQ(frags[i].payload.size() % 8, 0u);
    } else {
      EXPECT_FALSE(frags[i].more_fragments());
    }
    EXPECT_TRUE(ipv4_checksum_ok(ByteView(frags[i].to_bytes())));
  }
  const auto rebuilt = reassemble(frags);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(*rebuilt, defragmented_form(pkt.bytes));
}

INSTANTIATE_TEST_SUITE_P(Mtus, FragmentMtu,
                         ::testing::Values(68, 296, 576, 1006));

TEST(Fragment, NoFragmentationNeededStillRoundTrips) {
  const Packet pkt = tcp_packet(100);
  const auto frags = fragment_datagram(pkt.ip_bytes(), 1500);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_FALSE(frags[0].more_fragments());
  EXPECT_EQ(*reassemble(frags), defragmented_form(pkt.bytes));
}

TEST(Fragment, ReassemblyRejectsGaps) {
  const Packet pkt = tcp_packet(1472);
  auto frags = fragment_datagram(pkt.ip_bytes(), 576);
  ASSERT_GE(frags.size(), 3u);
  frags.erase(frags.begin() + 1);
  EXPECT_FALSE(reassemble(frags).has_value());
}

TEST(Fragment, ReassemblyRejectsMissingLastFragment) {
  const Packet pkt = tcp_packet(1472);
  auto frags = fragment_datagram(pkt.ip_bytes(), 576);
  frags.pop_back();
  EXPECT_FALSE(reassemble(frags).has_value());
}

TEST(Fragment, ReassemblyOrderIndependent) {
  const Packet pkt = tcp_packet(1472);
  auto frags = fragment_datagram(pkt.ip_bytes(), 296);
  std::reverse(frags.begin(), frags.end());
  EXPECT_EQ(*reassemble(frags), defragmented_form(pkt.bytes));
}

TEST(Fragment, RejectsTinyMtu) {
  const Packet pkt = tcp_packet(100);
  EXPECT_THROW(fragment_datagram(pkt.ip_bytes(), 24), std::invalid_argument);
}

TEST(Fragment, SubstitutionPreservesStructureButCorruptsData) {
  // The error model: same-offset fragments of two adjacent datagrams
  // get confused. The result reassembles fine structurally — only the
  // transport checksum can notice.
  const Packet p1 = tcp_packet(1472, 1);
  const Packet p2 = tcp_packet(1472, 1473);
  auto f1 = fragment_datagram(p1.ip_bytes(), 576);
  const auto f2 = fragment_datagram(p2.ip_bytes(), 576);
  ASSERT_EQ(f1.size(), f2.size());
  f1[1] = f2[1];  // middle fragment swapped
  const auto rebuilt = reassemble(f1);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_NE(*rebuilt, p1.bytes);
  // Structure is fine; the TCP checksum must catch this mix (random
  // payloads -> sums differ).
  PacketConfig cfg;
  EXPECT_TRUE(ipv4_checksum_ok(ByteView(*rebuilt)));
  EXPECT_FALSE(verify_transport_checksum(cfg, ByteView(*rebuilt)));
}

// ---- UDP ----

TEST(Udp, HeaderRoundTrip) {
  UdpHeader h;
  h.src_port = 53;
  h.dst_port = 1234;
  h.length = 512;
  h.checksum = 0xbeef;
  std::uint8_t raw[kUdpHeaderLen];
  h.write(raw);
  const auto parsed = UdpHeader::parse(ByteView(raw, sizeof raw));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 53);
  EXPECT_EQ(parsed->length, 512);
  EXPECT_EQ(parsed->checksum, 0xbeef);
}

TEST(Udp, BuildAndVerify) {
  const Bytes payload = payload_bytes(300, 5);
  const Bytes dgram = build_udp_datagram(0x0a000001, 0x0a000002, 53, 1234,
                                         ByteView(payload));
  EXPECT_EQ(verify_udp_datagram(ByteView(dgram)), UdpCheckResult::kValid);
}

TEST(Udp, CorruptionDetected) {
  const Bytes payload = payload_bytes(300, 6);
  Bytes dgram = build_udp_datagram(1, 2, 53, 1234, ByteView(payload));
  util::Rng rng(7);
  for (int t = 0; t < 200; ++t) {
    Bytes corrupted = dgram;
    corrupted[kIpv4HeaderLen + kUdpHeaderLen + rng.below(300)] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    EXPECT_EQ(verify_udp_datagram(ByteView(corrupted)),
              UdpCheckResult::kInvalid);
  }
}

TEST(Udp, DisabledChecksum) {
  const Bytes payload = payload_bytes(100, 8);
  const Bytes dgram = build_udp_datagram(1, 2, 53, 1234, ByteView(payload),
                                         /*with_checksum=*/false);
  EXPECT_EQ(verify_udp_datagram(ByteView(dgram)), UdpCheckResult::kDisabled);
}

TEST(Udp, ComputedZeroTransmittedAsAllOnes) {
  // Craft a payload whose checksum computes to zero: start with any
  // payload, then append 2 bytes equal to the residual so the sum
  // becomes 0xFFFF (whose complement is 0x0000).
  Bytes payload = payload_bytes(98, 9);
  payload.resize(100, 0);
  Bytes dgram = build_udp_datagram(1, 2, 53, 1234, ByteView(payload));
  // Compute what the field currently holds, then adjust the payload
  // tail so the complemented sum would be zero.
  const std::uint16_t field =
      util::load_be16(dgram.data() + kIpv4HeaderLen + 6);
  // Adding `field` at an even payload offset drives the new complement
  // to zero (sum becomes 0xFFFF).
  util::store_be16(&payload[98], field);
  const Bytes dgram2 = build_udp_datagram(1, 2, 53, 1234, ByteView(payload));
  const std::uint16_t field2 =
      util::load_be16(dgram2.data() + kIpv4HeaderLen + 6);
  EXPECT_EQ(field2, 0xffff);  // zero transmitted as all ones
  EXPECT_EQ(verify_udp_datagram(ByteView(dgram2)), UdpCheckResult::kValid);
}


// ---- SLIP ----

TEST(Slip, FrameDeframeRoundTrip) {
  util::Rng rng(20);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes datagram(1 + rng.below(600));
    rng.fill(datagram);
    const Bytes line = slip_frame(ByteView(datagram));
    const auto frames = slip_deframe(ByteView(line));
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0], datagram);
  }
}

TEST(Slip, EscapesSpecialBytes) {
  const Bytes datagram = {kSlipEnd, kSlipEsc, 0x42, kSlipEnd};
  const Bytes line = slip_frame(ByteView(datagram));
  // No raw END except the delimiters; no raw ESC except as escapes.
  std::size_t raw_ends = 0;
  for (std::size_t i = 1; i + 1 < line.size(); ++i)
    if (line[i] == kSlipEnd) ++raw_ends;
  EXPECT_EQ(raw_ends, 0u);
  const auto frames = slip_deframe(ByteView(line));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], datagram);
}

TEST(Slip, MultipleFramesOnOneLine) {
  Bytes line;
  std::vector<Bytes> sent;
  util::Rng rng(21);
  for (int i = 0; i < 5; ++i) {
    Bytes d(40 + rng.below(100));
    rng.fill(d);
    sent.push_back(d);
    slip_frame_append(line, ByteView(d));
  }
  const auto frames = slip_deframe(ByteView(line));
  ASSERT_EQ(frames.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i)
    EXPECT_EQ(frames[i], sent[i]);
}

TEST(Slip, CorruptedEndDelimiterFusesFrames) {
  // The serial-line splice: flip the END between two frames and they
  // merge into one jumbo frame that only higher layers can reject.
  const Bytes d1(100, 0x11);
  const Bytes d2(100, 0x22);
  Bytes line;
  slip_frame_append(line, ByteView(d1));
  slip_frame_append(line, ByteView(d2));
  // The back-to-back delimiters sit between the frames; corrupt both.
  std::size_t fused_at = 0;
  for (std::size_t i = 1; i < line.size(); ++i)
    if (line[i] == kSlipEnd) fused_at = i;  // last END before d2's data? scan
  // Simpler: flip every END except the outermost two.
  std::size_t first = 0, last = line.size() - 1;
  for (std::size_t i = first + 1; i < last; ++i)
    if (line[i] == kSlipEnd) line[i] = 0x33;
  (void)fused_at;
  const auto frames = slip_deframe(ByteView(line));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_GT(frames[0].size(), 200u);
}

TEST(Slip, DanglingEscTolerated) {
  const Bytes line = {kSlipEnd, 0x01, kSlipEsc, 0x99, 0x02, kSlipEnd};
  const auto frames = slip_deframe(ByteView(line));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], (Bytes{0x01, 0x99, 0x02}));
}

}  // namespace
}  // namespace cksum::net
