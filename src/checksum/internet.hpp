// The Internet (IP/TCP/UDP) checksum — RFC 1071 / RFC 1141.
//
// A 16-bit ones-complement sum of the data taken as big-endian 16-bit
// words, with an odd trailing byte padded on the right with zero. The
// transmitted check field is the ones-complement (bit inverse) of the
// sum, so a valid packet sums to 0xFFFF.
//
// Properties exercised by the paper and preserved here:
//  * The sum is position-independent: the sum of a packet equals the
//    ones-complement sum of the sums of its pieces (with a byte-swap
//    rule for pieces starting at odd offsets).
//  * The value space has "two zeros": 0x0000 and 0xFFFF are congruent
//    (the sum is arithmetic mod 65535). Congruence comparisons must
//    canonicalise; see `ones_canonical`.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace cksum::alg {

/// End-around-carry addition of two ones-complement 16-bit values.
constexpr std::uint16_t ones_add(std::uint16_t a, std::uint16_t b) noexcept {
  std::uint32_t sum = static_cast<std::uint32_t>(a) + b;
  sum = (sum & 0xffffu) + (sum >> 16);
  return static_cast<std::uint16_t>((sum & 0xffffu) + (sum >> 16));
}

/// Ones-complement negation (bit inverse).
constexpr std::uint16_t ones_neg(std::uint16_t a) noexcept {
  return static_cast<std::uint16_t>(~a);
}

/// Canonical representative of the congruence class mod 65535:
/// maps 0xFFFF ("negative zero") to 0x0000. Two ones-complement sums
/// are congruent iff their canonical forms are equal.
constexpr std::uint16_t ones_canonical(std::uint16_t a) noexcept {
  return a == 0xffffu ? static_cast<std::uint16_t>(0) : a;
}

/// Byte-swap a 16-bit sum. Per RFC 1071, the sum of a block that
/// starts at an odd byte offset within the containing message equals
/// the byte-swapped sum of the block computed standalone.
constexpr std::uint16_t ones_swap(std::uint16_t a) noexcept {
  return static_cast<std::uint16_t>((a << 8) | (a >> 8));
}

/// Incremental ones-complement summation.
///
/// Feed arbitrary chunks via update(); the object tracks byte parity so
/// odd-length chunks compose correctly. fold() returns the running
/// 16-bit sum (not inverted).
class InternetSum {
 public:
  /// Add a chunk of message bytes.
  void update(util::ByteView data) noexcept;

  /// Add a precomputed 16-bit sum of a block whose length parity is
  /// `block_odd_length`. The block is assumed to start at the current
  /// parity position (i.e. blocks are concatenated in order).
  void update_sum(std::uint16_t block_sum, bool block_odd_length) noexcept;

  /// Add one big-endian 16-bit word (e.g. a pseudo-header field).
  void update_word(std::uint16_t word) noexcept;

  /// Current 16-bit ones-complement sum.
  std::uint16_t fold() const noexcept;

  /// Current check-field value: the inverse of the folded sum.
  std::uint16_t checksum() const noexcept { return ones_neg(fold()); }

  /// Parity of the total byte count consumed so far.
  bool odd() const noexcept { return odd_; }

  void reset() noexcept {
    acc_ = 0;
    odd_ = false;
  }

 private:
  std::uint64_t acc_ = 0;
  bool odd_ = false;
};

/// One-shot ones-complement sum of a buffer (not inverted).
std::uint16_t internet_sum(util::ByteView data) noexcept;

/// Wide-word implementation: folds 8 input bytes per 64-bit addition,
/// the "one or two additions per machine word" §2 of the paper credits
/// for the TCP checksum's speed. Bit-identical to internet_sum();
/// exposed separately so the speed bench can compare and the tests can
/// cross-check.
std::uint16_t internet_sum_wide(util::ByteView data) noexcept;

/// One-shot checksum field value: ~internet_sum(data).
inline std::uint16_t internet_checksum(util::ByteView data) noexcept {
  return ones_neg(internet_sum(data));
}

/// Combine the sums of two adjacent blocks A then B into the sum of
/// their concatenation. `a_odd_length` is the length parity of block A
/// (if odd, B's sum must be byte-swapped before adding — RFC 1071 §2B).
constexpr std::uint16_t internet_combine(std::uint16_t sum_a,
                                         std::uint16_t sum_b,
                                         bool a_odd_length) noexcept {
  return ones_add(sum_a, a_odd_length ? ones_swap(sum_b) : sum_b);
}

/// Incremental update per RFC 1141: the new message sum after a 16-bit
/// word `old_word` at an even offset is replaced by `new_word`.
constexpr std::uint16_t internet_update_word(std::uint16_t old_sum,
                                             std::uint16_t old_word,
                                             std::uint16_t new_word) noexcept {
  // old_sum - old_word + new_word in ones-complement arithmetic.
  return ones_add(ones_add(old_sum, ones_neg(old_word)), new_word);
}

}  // namespace cksum::alg
