// The splice simulator. The crown-jewel test cross-validates the
// partial-sums fast path against the materialise-and-verify reference
// oracle for every splice of real generator data, across transports,
// placements, and ablations.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "core/experiments.hpp"
#include "core/pdu_model.hpp"
#include "core/splice_sim.hpp"
#include "fsgen/generator.hpp"
#include "net/packet.hpp"
#include "util/rng.hpp"

namespace cksum::core {
namespace {

using util::ByteView;
using util::Bytes;

net::FlowConfig flow_with(alg::Algorithm transport,
                          net::ChecksumPlacement placement,
                          bool invert = true, bool fill_ip = true) {
  net::FlowConfig cfg = paper_flow_config();
  cfg.packet.transport = transport;
  cfg.packet.placement = placement;
  cfg.packet.invert_checksum = invert;
  cfg.packet.fill_ip_header = fill_ip;
  return cfg;
}

/// Reference statistics computed entirely through the byte-level
/// oracle: a full mirror of evaluate_pair's classification, down to
/// the k-histograms, hdr2 population and Table 10 matrix. Only the
/// fast_path/slow_path evaluator-internals are left at zero.
SpliceStats reference_pair_stats(const net::PacketConfig& cfg,
                                 const SimPacket& p1, const SimPacket& p2) {
  SpliceStats st;
  ++st.pairs;
  const std::size_t n2 = p2.pdu.num_cells();
  atm::for_each_splice(
      p1.pdu.num_cells(), n2, [&](const atm::SpliceSpec& s) {
        ++st.total;
        const SpliceOutcome o = evaluate_splice_reference(cfg, p1, p2, s);
        if (o.caught_by_header) {
          ++st.caught_by_header;
          return;
        }
        if (o.identical) {
          ++st.identical;
          if (o.transport_pass)
            ++st.pass_identical;
          else
            ++st.fail_identical;
          return;
        }
        ++st.remaining;
        if (o.transport_pass) {
          ++st.missed_transport;
          ++st.pass_changed;
        } else {
          ++st.fail_changed;
        }
        if (o.crc_pass) ++st.missed_crc;
        if (o.crc_pass && o.transport_pass) ++st.missed_both;
        const std::size_t k = std::min<std::size_t>(n2 - s.k1, kMaxTrackedK - 1);
        ++st.remaining_by_k[k];
        if (o.transport_pass) ++st.missed_by_k[k];
        if ((s.mask2 & 1u) != 0) {
          ++st.remaining_with_hdr2;
          if (o.transport_pass) ++st.missed_with_hdr2;
        }
      });
  return st;
}

/// Copy with the evaluator-internal path counters zeroed, so a DFS
/// result can be compared bitwise against the oracle mirror (which
/// never takes the fast path) or against the flat evaluator (which
/// takes it for different splices).
SpliceStats without_path_counters(SpliceStats st) {
  st.fast_path = 0;
  st.slow_path = 0;
  return st;
}

void expect_same_counters(const SpliceStats& fast, const SpliceStats& ref,
                          const char* label) {
  EXPECT_EQ(fast.total, ref.total) << label;
  EXPECT_EQ(fast.caught_by_header, ref.caught_by_header) << label;
  EXPECT_EQ(fast.identical, ref.identical) << label;
  EXPECT_EQ(fast.remaining, ref.remaining) << label;
  EXPECT_EQ(fast.missed_crc, ref.missed_crc) << label;
  EXPECT_EQ(fast.missed_transport, ref.missed_transport) << label;
  EXPECT_EQ(fast.fail_identical, ref.fail_identical) << label;
  EXPECT_EQ(fast.pass_identical, ref.pass_identical) << label;
  EXPECT_EQ(fast.pass_changed, ref.pass_changed) << label;
  EXPECT_EQ(fast.fail_changed, ref.fail_changed) << label;
}

struct CrossCase {
  alg::Algorithm transport;
  net::ChecksumPlacement placement;
  bool invert;
  bool fill_ip;
  fsgen::FileKind kind;
  const char* label;
};

class FastVsReference : public ::testing::TestWithParam<CrossCase> {};

TEST_P(FastVsReference, EverySpliceAgrees) {
  const CrossCase c = GetParam();
  const net::FlowConfig flow =
      flow_with(c.transport, c.placement, c.invert, c.fill_ip);

  // Data chosen to exercise interesting cases: zero-heavy and
  // repetitive files produce identical and transport-missed splices.
  const Bytes file = fsgen::generate_file(c.kind, 77, 6000);
  const auto pkts = packetize_file(flow, ByteView(file));
  ASSERT_GE(pkts.size(), 2u);

  SpliceStats fast, ref;
  for (std::size_t i = 0; i + 1 < pkts.size(); ++i) {
    evaluate_pair(flow.packet, pkts[i], pkts[i + 1], fast);
    ref.merge(reference_pair_stats(flow.packet, pkts[i], pkts[i + 1]));
  }
  expect_same_counters(fast, ref, c.label);
  // The runt tail pair must have exercised some splices too.
  EXPECT_GT(fast.total, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FastVsReference,
    ::testing::Values(
        CrossCase{alg::Algorithm::kInternet, net::ChecksumPlacement::kHeader,
                  true, true, fsgen::FileKind::kGmonProfile, "tcp_gmon"},
        CrossCase{alg::Algorithm::kInternet, net::ChecksumPlacement::kHeader,
                  true, true, fsgen::FileKind::kText, "tcp_text"},
        CrossCase{alg::Algorithm::kInternet, net::ChecksumPlacement::kHeader,
                  false, true, fsgen::FileKind::kGmonProfile,
                  "tcp_noninverted_gmon"},
        CrossCase{alg::Algorithm::kInternet, net::ChecksumPlacement::kHeader,
                  true, false, fsgen::FileKind::kGmonProfile,
                  "tcp_unfilled_ip_gmon"},
        CrossCase{alg::Algorithm::kInternet, net::ChecksumPlacement::kTrailer,
                  true, true, fsgen::FileKind::kGmonProfile,
                  "tcp_trailer_gmon"},
        CrossCase{alg::Algorithm::kInternet, net::ChecksumPlacement::kTrailer,
                  true, true, fsgen::FileKind::kPbmImage, "tcp_trailer_pbm"},
        CrossCase{alg::Algorithm::kFletcher255, net::ChecksumPlacement::kHeader,
                  true, true, fsgen::FileKind::kPbmImage, "f255_pbm"},
        CrossCase{alg::Algorithm::kFletcher255, net::ChecksumPlacement::kHeader,
                  true, true, fsgen::FileKind::kWordProcessor, "f255_wordproc"},
        CrossCase{alg::Algorithm::kFletcher256, net::ChecksumPlacement::kHeader,
                  true, true, fsgen::FileKind::kHexPostscript, "f256_hexps"},
        CrossCase{alg::Algorithm::kFletcher256, net::ChecksumPlacement::kHeader,
                  true, true, fsgen::FileKind::kExecutable, "f256_exe"},
        CrossCase{alg::Algorithm::kFletcher256, net::ChecksumPlacement::kTrailer,
                  true, true, fsgen::FileKind::kGmonProfile,
                  "f256_trailer_gmon"}),
    [](const auto& gen_info) { return std::string(gen_info.param.label); });

TEST(FastVsReference, RuntTailPairsAgree) {
  // Files sized to produce 1..9-byte runt packets (the SIGCOMM '95
  // simulator's bug #3 territory, and our slow-path triggers) — across
  // every transport and placement combination.
  for (const auto transport :
       {alg::Algorithm::kInternet, alg::Algorithm::kFletcher255,
        alg::Algorithm::kFletcher256}) {
    for (const auto placement :
         {net::ChecksumPlacement::kHeader, net::ChecksumPlacement::kTrailer}) {
      for (std::size_t tail = 1; tail <= 9; tail += 2) {
        const net::FlowConfig flow = flow_with(transport, placement);
        Bytes file = fsgen::generate_file(fsgen::FileKind::kText, tail, 512);
        file.resize(512 + tail);
        const auto pkts = packetize_file(flow, ByteView(file));
        ASSERT_EQ(pkts.size(), 3u);
        SpliceStats fast, ref;
        evaluate_pair(flow.packet, pkts[1], pkts[2], fast);
        ref.merge(reference_pair_stats(flow.packet, pkts[1], pkts[2]));
        expect_same_counters(fast, ref, "runt");
      }
    }
  }
}


TEST(FastVsReference, Legacy95ModeAgrees) {
  // The SIGCOMM '95 emulation changes the builder, the pseudo-header
  // and the header checks; the fast path must still match the oracle.
  net::FlowConfig flow = paper_flow_config();
  flow.packet.legacy95_headers = true;
  const Bytes file =
      fsgen::generate_file(fsgen::FileKind::kGmonProfile, 31, 6000);
  const auto pkts = packetize_file(flow, ByteView(file));
  ASSERT_GE(pkts.size(), 2u);
  SpliceStats fast, ref;
  for (std::size_t i = 0; i + 1 < pkts.size(); ++i) {
    evaluate_pair(flow.packet, pkts[i], pkts[i + 1], fast);
    ref.merge(reference_pair_stats(flow.packet, pkts[i], pkts[i + 1]));
  }
  expect_same_counters(fast, ref, "legacy95");
}

TEST(SpliceSim, Legacy95InflatesMissRate) {
  // §6.2: the legacy builder makes zero-payload header cells
  // zero-congruent, inflating the miss rate by orders of magnitude on
  // zero-heavy data.
  // Build a file dominated by fully-zero packets with occasional
  // non-zero patches (a sparse binary).
  Bytes file(60000, 0x00);
  for (std::size_t i = 500; i < file.size(); i += 1900)
    file[i] = static_cast<std::uint8_t>(0x40 + i % 50);
  SpliceRunConfig modern;
  modern.flow = paper_flow_config();
  SpliceRunConfig legacy = modern;
  legacy.flow.packet.legacy95_headers = true;
  const SpliceStats a = run_file(modern, ByteView(file));
  const SpliceStats b = run_file(legacy, ByteView(file));
  ASSERT_GT(a.remaining, 0u);
  ASSERT_GT(b.remaining, 0u);
  const double ra = static_cast<double>(a.missed_transport) /
                    static_cast<double>(a.remaining);
  const double rb = static_cast<double>(b.missed_transport) /
                    static_cast<double>(b.remaining);
  EXPECT_GT(rb, 2.0 * ra);
}


TEST(FastVsReference, RandomisedConfigurationsAgree) {
  // Differential fuzzing: random (transport, placement, ablation,
  // kind, seed) combinations, each cross-validated splice-by-splice
  // against the byte-level oracle.
  util::Rng rng(0xfa57);
  for (int trial = 0; trial < 12; ++trial) {
    net::FlowConfig flow = paper_flow_config();
    flow.packet.transport =
        std::array{alg::Algorithm::kInternet, alg::Algorithm::kFletcher255,
                   alg::Algorithm::kFletcher256}[rng.below(3)];
    flow.packet.placement = rng.chance(0.5)
                                ? net::ChecksumPlacement::kHeader
                                : net::ChecksumPlacement::kTrailer;
    flow.packet.invert_checksum = rng.chance(0.8);
    flow.packet.fill_ip_header = rng.chance(0.8);
    flow.packet.legacy95_headers = rng.chance(0.2);
    flow.segment_size = std::array{128u, 256u, 301u}[rng.below(3)];
    const auto kind =
        fsgen::kAllKinds[rng.below(std::size(fsgen::kAllKinds))];
    const Bytes file = fsgen::generate_file(kind, rng.next(), 3000);

    const auto pkts = packetize_file(flow, ByteView(file));
    ASSERT_GE(pkts.size(), 2u);
    SpliceStats fast, ref;
    for (std::size_t i = 0; i + 1 < pkts.size(); ++i) {
      evaluate_pair(flow.packet, pkts[i], pkts[i + 1], fast);
      ref.merge(reference_pair_stats(flow.packet, pkts[i], pkts[i + 1]));
    }
    expect_same_counters(fast, ref,
                         ("trial " + std::to_string(trial)).c_str());
  }
}

TEST(FastVsReference, DfsBitwiseEqualsOracleOnCraftedPairs) {
  // Property test over crafted packet pairs, including shapes
  // packetize_file never produces (n2 > n1, runt meeting runt): the
  // ENTIRE DFS result — k-histograms, hdr2 population, Table 10
  // matrix, missed_both — must equal the byte-level oracle mirror bit
  // for bit. Path counters are zeroed (the mirror never takes the
  // fast path) but must partition the total.
  util::Rng rng(0xb17e);
  for (int trial = 0; trial < 48; ++trial) {
    net::FlowConfig flow = paper_flow_config();
    flow.packet.transport =
        std::array{alg::Algorithm::kInternet, alg::Algorithm::kFletcher255,
                   alg::Algorithm::kFletcher256}[rng.below(3)];
    flow.packet.placement = rng.chance(0.5)
                                ? net::ChecksumPlacement::kHeader
                                : net::ChecksumPlacement::kTrailer;
    flow.packet.invert_checksum = rng.chance(0.8);
    flow.packet.fill_ip_header = rng.chance(0.8);

    // n cells hold a 40-byte datagram header plus payload of
    // 48(n-2)+1 .. 48(n-1) bytes (odd lengths arise naturally).
    const auto payload_for = [&](std::size_t n) {
      const std::size_t lo = 48 * (n - 2) + 1;
      const std::size_t len = lo + rng.below(48);
      Bytes payload(len);
      for (auto& b : payload)  // zero-heavy, so identical and
        b = rng.chance(0.4)    // transport-missed splices arise
                ? 0
                : static_cast<std::uint8_t>(rng.next());
      return payload;
    };

    const std::size_t n1 = 2 + rng.below(11);
    const std::size_t n2 = 2 + rng.below(11);
    const Bytes pay1 = payload_for(n1);
    const Bytes pay2 =
        (n1 == n2 && rng.chance(0.3)) ? pay1 : payload_for(n2);
    const SimPacket p1 = make_sim_packet(
        flow.packet, net::build_packet(flow.packet, flow.initial_seq, 1,
                                       ByteView(pay1)));
    const SimPacket p2 = make_sim_packet(
        flow.packet,
        net::build_packet(flow.packet,
                          flow.initial_seq +
                              static_cast<std::uint32_t>(pay1.size()),
                          2, ByteView(pay2)));

    SpliceStats fast;
    evaluate_pair(flow.packet, p1, p2, fast);
    EXPECT_EQ(fast.fast_path + fast.slow_path, fast.total)
        << "trial " << trial;
    const SpliceStats ref = reference_pair_stats(flow.packet, p1, p2);
    EXPECT_TRUE(without_path_counters(fast) == ref)
        << "trial " << trial << " n1=" << n1 << " n2=" << n2;
  }
}

TEST(SpliceSim, FlatEvaluatorBitwiseMatchesDfs) {
  // The flat enumerator (kept as the benchmark baseline) and the DFS
  // must agree on everything, including which splices are slow-path:
  // both defer exactly the header-passing splices that don't start at
  // pkt1's cell 0.
  for (const auto placement : {net::ChecksumPlacement::kHeader,
                               net::ChecksumPlacement::kTrailer}) {
    const net::FlowConfig flow =
        flow_with(alg::Algorithm::kInternet, placement);
    const Bytes file =
        fsgen::generate_file(fsgen::FileKind::kGmonProfile, 21, 8000);
    const auto pkts = packetize_file(flow, ByteView(file));
    ASSERT_GE(pkts.size(), 2u);
    SpliceStats dfs, flat;
    for (std::size_t i = 0; i + 1 < pkts.size(); ++i) {
      evaluate_pair(flow.packet, pkts[i], pkts[i + 1], dfs);
      evaluate_pair_flat(flow.packet, pkts[i], pkts[i + 1], flat);
    }
    EXPECT_TRUE(dfs == flat);
    EXPECT_EQ(flat.fast_path + flat.slow_path, flat.total);
  }
}

TEST(SpliceSim, ReferenceCorpusStaysFastPath) {
  // The partial-sums evaluator only materialises splices whose first
  // kept cell passes the header checks but isn't pkt1's cell 0 — on
  // the reference corpus that is well under 1% of all splices.
  SpliceRunConfig cfg;
  cfg.flow = paper_flow_config();
  const fsgen::Filesystem fs(fsgen::profile("nsc05"), 0.2);
  const SpliceStats st = run_filesystem(cfg, fs);
  ASSERT_GT(st.total, 0u);
  EXPECT_EQ(st.fast_path + st.slow_path, st.total);
  EXPECT_GT(st.fast_path * 100, st.total * 99);
}

TEST(SpliceSim, TotalMatchesCombinatorics) {
  const net::FlowConfig flow =
      flow_with(alg::Algorithm::kInternet, net::ChecksumPlacement::kHeader);
  const Bytes file(256 * 4, 0x5a);  // 4 equal full-size packets
  const auto pkts = packetize_file(flow, ByteView(file));
  ASSERT_EQ(pkts.size(), 4u);
  SpliceStats st;
  for (std::size_t i = 0; i + 1 < pkts.size(); ++i)
    evaluate_pair(flow.packet, pkts[i], pkts[i + 1], st);
  // Each full-size pair contributes C(12,6)-1 = 923 splices.
  EXPECT_EQ(st.pairs, 3u);
  EXPECT_EQ(st.total, 3u * 923u);
}

TEST(SpliceSim, ConstantFileProducesIdenticalSplices) {
  // All-identical payload cells: most splices reproduce an original
  // packet and are classified benign, exactly the "Identical data"
  // row's point.
  const net::FlowConfig flow =
      flow_with(alg::Algorithm::kInternet, net::ChecksumPlacement::kHeader);
  const Bytes file(256 * 2, 0x00);
  const auto pkts = packetize_file(flow, ByteView(file));
  SpliceStats st;
  evaluate_pair(flow.packet, pkts[0], pkts[1], st);
  EXPECT_GT(st.identical, 0u);
  // An identical splice is never a checksum failure.
  EXPECT_EQ(st.total, st.caught_by_header + st.identical + st.remaining);
}

TEST(SpliceSim, MismatchedLengthsAllCaughtByHeader) {
  // A full packet followed by a shorter runt: the AAL5 length from
  // pkt2's trailer can never match pkt1's IP length, so (almost) all
  // splices die in the header checks.
  const net::FlowConfig flow =
      flow_with(alg::Algorithm::kInternet, net::ChecksumPlacement::kHeader);
  const Bytes file = fsgen::generate_file(fsgen::FileKind::kText, 1, 300);
  const auto pkts = packetize_file(flow, ByteView(file));
  ASSERT_EQ(pkts.size(), 2u);
  ASSERT_NE(pkts[0].total_len, pkts[1].total_len);
  SpliceStats st;
  evaluate_pair(flow.packet, pkts[0], pkts[1], st);
  EXPECT_GT(st.total, 0u);
  EXPECT_EQ(st.caught_by_header, st.total);
}

TEST(SpliceSim, AccountingInvariant) {
  const net::FlowConfig flow =
      flow_with(alg::Algorithm::kInternet, net::ChecksumPlacement::kHeader);
  const Bytes file = fsgen::generate_file(fsgen::FileKind::kExecutable, 3, 20000);
  SpliceRunConfig cfg;
  cfg.flow = flow;
  const SpliceStats st = run_file(cfg, ByteView(file));
  EXPECT_EQ(st.total, st.caught_by_header + st.identical + st.remaining);
  EXPECT_GE(st.remaining, st.missed_transport);
  EXPECT_GE(st.remaining, st.missed_crc);
  EXPECT_EQ(st.pass_changed, st.missed_transport);
  EXPECT_EQ(st.remaining, st.pass_changed + st.fail_changed);
  EXPECT_EQ(st.identical, st.pass_identical + st.fail_identical);
  std::uint64_t by_k_rem = 0, by_k_miss = 0;
  for (std::size_t k = 0; k < kMaxTrackedK; ++k) {
    by_k_rem += st.remaining_by_k[k];
    by_k_miss += st.missed_by_k[k];
  }
  EXPECT_EQ(by_k_rem, st.remaining);
  EXPECT_EQ(by_k_miss, st.missed_transport);
}

TEST(SpliceSim, HeaderPlacementNeverRejectsIdenticalSplices) {
  // With a header checksum, a splice identical to an original packet
  // carries that packet's own checksum — it always verifies (the
  // paper's Table 10, header column: zero false positives).
  const net::FlowConfig flow =
      flow_with(alg::Algorithm::kInternet, net::ChecksumPlacement::kHeader);
  SpliceRunConfig cfg;
  cfg.flow = flow;
  const Bytes file = fsgen::generate_file(fsgen::FileKind::kGmonProfile, 5, 30000);
  const SpliceStats st = run_file(cfg, ByteView(file));
  EXPECT_GT(st.identical, 0u);
  EXPECT_EQ(st.fail_identical, 0u);
}

TEST(SpliceSim, TrailerPlacementRejectsMostIdenticalSplices) {
  // Table 10, trailer column: identical splices carry the *second*
  // packet's trailer checksum computed with a different sequence
  // number, so they are (almost always) rejected.
  const net::FlowConfig flow =
      flow_with(alg::Algorithm::kInternet, net::ChecksumPlacement::kTrailer);
  SpliceRunConfig cfg;
  cfg.flow = flow;
  const Bytes file = fsgen::generate_file(fsgen::FileKind::kGmonProfile, 5, 30000);
  const SpliceStats st = run_file(cfg, ByteView(file));
  EXPECT_GT(st.identical, 0u);
  EXPECT_GT(st.fail_identical, st.pass_identical);
}

TEST(SpliceSim, CompressedRunShrinksMissRate) {
  // Table 7's direction: compressing the data pushes the TCP miss
  // rate down toward the uniform-data expectation.
  SpliceRunConfig cfg;
  cfg.flow = flow_with(alg::Algorithm::kInternet,
                       net::ChecksumPlacement::kHeader);
  const Bytes file = fsgen::generate_file(fsgen::FileKind::kGmonProfile, 9, 60000);

  const SpliceStats raw = run_file(cfg, ByteView(file));
  cfg.compress_files = true;
  const SpliceStats packed = run_file(cfg, ByteView(file));

  ASSERT_GT(raw.remaining, 0u);
  const double raw_rate = static_cast<double>(raw.missed_transport) /
                          static_cast<double>(raw.remaining);
  const double packed_rate =
      packed.remaining == 0
          ? 0.0
          : static_cast<double>(packed.missed_transport) /
                static_cast<double>(packed.remaining);
  // gmon data is pathological for TCP; compressed data should be
  // orders of magnitude better.
  EXPECT_GT(raw_rate, 20 * packed_rate);
}


TEST(SpliceSim, ParallelRunMatchesSequential) {
  // Per-file statistics are additive and files are independent, so the
  // thread count must not change any counter.
  SpliceRunConfig seq;
  seq.flow = flow_with(alg::Algorithm::kInternet,
                       net::ChecksumPlacement::kHeader);
  seq.threads = 1;
  SpliceRunConfig par = seq;
  par.threads = 4;
  const fsgen::Filesystem fs(fsgen::profile("nsc05"), 0.3);
  const SpliceStats a = run_filesystem(seq, fs);
  const SpliceStats b = run_filesystem(par, fs);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.caught_by_header, b.caught_by_header);
  EXPECT_EQ(a.identical, b.identical);
  EXPECT_EQ(a.remaining, b.remaining);
  EXPECT_EQ(a.missed_transport, b.missed_transport);
  EXPECT_EQ(a.missed_crc, b.missed_crc);
  EXPECT_EQ(a.packets, b.packets);
  for (std::size_t k = 0; k < kMaxTrackedK; ++k)
    EXPECT_EQ(a.missed_by_k[k], b.missed_by_k[k]);
}

TEST(SpliceSim, ThreadCountDeterminismIsBitwise) {
  // Stronger than the field-by-field check above: the ENTIRE stats
  // struct — every counter, both k-histograms, the Table 10 matrix —
  // must be bitwise identical between threads=1 and threads=4, across
  // transports and placements.
  const fsgen::Filesystem fs(fsgen::profile("nsc05"), 0.2);
  for (const auto transport :
       {alg::Algorithm::kInternet, alg::Algorithm::kFletcher256}) {
    for (const auto placement : {net::ChecksumPlacement::kHeader,
                                 net::ChecksumPlacement::kTrailer}) {
      SpliceRunConfig seq;
      seq.flow = flow_with(transport, placement);
      seq.threads = 1;
      SpliceRunConfig par = seq;
      par.threads = 4;
      const SpliceStats a = run_filesystem(seq, fs);
      const SpliceStats b = run_filesystem(par, fs);
      EXPECT_TRUE(a == b) << "threads=4 diverged from threads=1";
      // And re-running must be self-consistent too.
      EXPECT_TRUE(b == run_filesystem(par, fs));
    }
  }
}

TEST(SpliceSim, StatsMergeIsAdditive) {
  SpliceStats a, b;
  a.total = 5;
  a.remaining = 3;
  a.missed_by_k[2] = 1;
  b.total = 7;
  b.remaining = 2;
  b.missed_by_k[2] = 4;
  a.merge(b);
  EXPECT_EQ(a.total, 12u);
  EXPECT_EQ(a.remaining, 5u);
  EXPECT_EQ(a.missed_by_k[2], 5u);
}

TEST(SpliceSim, PctOfRemaining) {
  SpliceStats st;
  st.remaining = 200;
  EXPECT_DOUBLE_EQ(st.pct_of_remaining(1), 0.5);
  SpliceStats empty;
  EXPECT_DOUBLE_EQ(empty.pct_of_remaining(1), 0.0);
}

}  // namespace
}  // namespace cksum::core
