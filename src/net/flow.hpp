// Segment a file into the TCP flow the paper's simulator transfers:
// fixed-size segments (256 bytes in all the paper's tables) with a
// runt final segment, sequence numbers advancing by the data length
// and the IP ID by one per packet.
#pragma once

#include <vector>

#include "net/packet.hpp"

namespace cksum::net {

struct FlowConfig {
  PacketConfig packet;
  std::size_t segment_size = 256;
  std::uint32_t initial_seq = 1;
  std::uint16_t initial_ip_id = 1;
};

/// All data segments of one file transfer, in order. An empty file
/// produces no packets.
std::vector<Packet> segment_file(const FlowConfig& cfg, util::ByteView file);

}  // namespace cksum::net
