// faultlab — fault-injection soak driver over the full receiver stack.
//
//   faultlab soak [options]        randomized scenarios until the
//                                  fault budget is spent; exit 1 (and
//                                  print one reproducer line) on any
//                                  invariant violation
//   faultlab replay --seed S --scenario N [options]
//                                  re-run exactly one scenario
//
// options:
//   --seed <n>        master seed                    (default 0xC0FFEE)
//   --faults <n>      injected-fault-event target    (default 1000000)
//   --max-scenarios <n>  hard scenario cap           (default unlimited)
//   --channels <n>    pin the demux channel cap      (default per-scenario)
//   --budget <n>      pin the demux pending budget   (default per-scenario)
//   --repro-file <p>  also write the reproducer line to this file
//   --quiet           summary line only
//
// Invariants checked (see docs/FAULTS.md): no crash, demux memory
// bounded by its budget, and no undetected corruption — every PDU
// passing length+CRC must match a payload that was actually sent.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <fstream>

#include "core/report.hpp"
#include "faults/soak.hpp"

using namespace cksum;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: faultlab soak [--seed n] [--faults n] [--max-scenarios n]\n"
      "                     [--channels n] [--budget n] [--repro-file p]\n"
      "                     [--quiet]\n"
      "       faultlab replay --seed n --scenario n [--channels n] "
      "[--budget n]\n");
  return 2;
}

struct Opts {
  faults::SoakConfig cfg;
  std::uint64_t scenario = 0;
  bool have_scenario = false;
  std::string repro_file;
  bool quiet = false;
  bool ok = true;
};

Opts parse(const std::vector<std::string>& args) {
  Opts o;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        o.ok = false;
        return "0";
      }
      return args[++i];
    };
    if (a == "--seed") {
      o.cfg.seed = std::stoull(next(), nullptr, 0);
    } else if (a == "--faults") {
      o.cfg.target_faults = std::stoull(next());
    } else if (a == "--max-scenarios") {
      o.cfg.max_scenarios = std::stoull(next());
    } else if (a == "--channels") {
      o.cfg.max_channels = std::stoull(next());
    } else if (a == "--budget") {
      o.cfg.max_pending_cells = std::stoull(next());
    } else if (a == "--scenario") {
      o.scenario = std::stoull(next(), nullptr, 0);
      o.have_scenario = true;
    } else if (a == "--repro-file") {
      o.repro_file = next();
    } else if (a == "--quiet") {
      o.quiet = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      o.ok = false;
    }
  }
  return o;
}

void print_totals(const faults::ScenarioResult& t) {
  const faults::FaultStats& f = t.faults;
  core::TextTable inj({"fault class", "injected"});
  inj.add_row({"payload burst", core::fmt_count(f.payload_bursts)});
  inj.add_row({"HEC corruption", core::fmt_count(f.hec_corruptions)});
  inj.add_row({"  dropped by HEC", core::fmt_count(f.hec_dropped)});
  inj.add_row({"  miscorrected", core::fmt_count(f.hec_miscorrected)});
  inj.add_row({"duplication", core::fmt_count(f.duplicates)});
  inj.add_row({"reordering", core::fmt_count(f.reorders)});
  inj.add_row({"EOM flip", core::fmt_count(f.eom_flips)});
  inj.add_row({"misdelivery", core::fmt_count(f.misdeliveries)});
  inj.add_row({"truncation", core::fmt_count(f.truncations)});
  inj.add_separator();
  inj.add_row({"total fault events", core::fmt_count(f.total_faults())});
  inj.print(std::cout);

  std::printf("\n");
  core::TextTable rx({"receiver", "count"});
  rx.add_row({"cells into channel", core::fmt_count(f.cells_in)});
  rx.add_row({"cells out of channel", core::fmt_count(f.cells_out)});
  rx.add_row({"cells lost on link", core::fmt_count(t.loss.cells_lost)});
  rx.add_row({"cells policy-dropped",
              core::fmt_count(t.loss.cells_policy_drop)});
  rx.add_row({"cells into demux", core::fmt_count(t.cells_to_demux)});
  rx.add_row({"budget drops", core::fmt_count(t.demux.budget_drops)});
  rx.add_row({"channel evictions", core::fmt_count(t.demux.evictions)});
  rx.add_row({"oversize discards", core::fmt_count(t.oversize_discards)});
  rx.add_row({"payloads sent", core::fmt_count(t.payloads_sent)});
  rx.add_row({"candidate PDUs", core::fmt_count(t.pdus_delivered)});
  rx.add_row({"PDUs passing checks", core::fmt_count(t.pdus_ok)});
  rx.print(std::cout);
}

int report(const faults::SoakConfig& cfg, const faults::SoakResult& res,
           const Opts& o) {
  if (!o.quiet) {
    print_totals(res.totals);
    std::printf("\n");
  }
  std::printf("%llu scenarios, %s fault events, %s cells: %s\n",
              static_cast<unsigned long long>(res.scenarios),
              core::fmt_count(res.totals.faults.total_faults()).c_str(),
              core::fmt_count(res.totals.faults.cells_in).c_str(),
              res.ok() ? "all invariants held" : "INVARIANT VIOLATED");
  if (!res.ok()) {
    std::printf("  %s\n  reproduce with: %s\n",
                res.totals.violation_detail.c_str(),
                res.reproducer.c_str());
    if (!o.repro_file.empty()) {
      std::ofstream f(o.repro_file);
      f << res.reproducer << "\n";
    }
    return 1;
  }
  (void)cfg;
  return 0;
}

int cmd_soak(const Opts& o) {
  const faults::SoakResult res = faults::run_soak(o.cfg);
  return report(o.cfg, res, o);
}

int cmd_replay(const Opts& o) {
  if (!o.have_scenario) return usage();
  const faults::ScenarioResult r = faults::run_scenario(o.cfg, o.scenario);
  faults::SoakResult res;
  res.scenarios = 1;
  res.totals = r;
  if (r.violations > 0)
    res.reproducer = faults::reproducer_line(o.cfg, o.scenario);
  return report(o.cfg, res, o);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Opts o;
  try {
    o = parse(std::vector<std::string>(argv + 2, argv + argc));
  } catch (const std::exception&) {
    std::fprintf(stderr, "faultlab: expected a number after the last option\n");
    return usage();
  }
  if (!o.ok) return usage();
  try {
    if (cmd == "soak") return cmd_soak(o);
    if (cmd == "replay") return cmd_replay(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "faultlab: %s\n", e.what());
    return 1;
  }
  return usage();
}
