// Filesystem survey: run the paper's full measurement pipeline over
// one synthetic filesystem profile and report everything the paper
// reports about a filesystem — splice-classification counts, miss
// rates for all four check codes, distribution skew, and locality.
//
//   $ ./examples/filesystem_survey [profile] [scale]
//   $ ./examples/filesystem_survey sics.se:/opt 2.0
//
// Run with no arguments for the default (smeg.stanford.edu:/u1) and a
// list of available profiles.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "stats/distribution.hpp"
#include "stats/uniformity.hpp"

using namespace cksum;

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "smeg.stanford.edu:/u1";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  const fsgen::FsProfile* prof = nullptr;
  try {
    prof = &fsgen::profile(name);
  } catch (const std::out_of_range&) {
    std::printf("unknown profile '%s'; available:\n", name);
    for (const auto& p : fsgen::all_profiles())
      std::printf("  %s\n", p.full_name().c_str());
    return 1;
  }

  const fsgen::Filesystem fs(*prof, scale);
  std::printf("== survey of %s (%zu files, ~%zu KiB) ==\n\n",
              prof->full_name().c_str(), fs.file_count(),
              fs.approx_total_bytes() / 1024);

  // --- Splice simulation under all four transports. ---
  std::printf("splice simulation (256-byte segments over AAL5):\n");
  core::TextTable t({"checksum", "remaining", "missed", "miss %",
                     "x uniform"});
  for (const alg::Algorithm a :
       {alg::Algorithm::kInternet, alg::Algorithm::kFletcher255,
        alg::Algorithm::kFletcher256}) {
    net::PacketConfig cfg;
    cfg.transport = a;
    const core::SpliceStats st = core::run_profile(*prof, cfg, scale);
    const double rate = st.remaining
                            ? static_cast<double>(st.missed_transport) /
                                  static_cast<double>(st.remaining)
                            : 0.0;
    char xunif[32];
    std::snprintf(xunif, sizeof xunif, "%.1f",
                  rate / alg::uniform_miss_rate(a));
    t.add_row({std::string(alg::name(a)), core::fmt_count(st.remaining),
               core::fmt_count(st.missed_transport), core::fmt_pct(rate),
               xunif});
    if (a == alg::Algorithm::kInternet) {
      std::printf(
          "  (header checks caught %s; identical-data splices %s; CRC-32 "
          "missed %s)\n",
          core::fmt_count(st.caught_by_header).c_str(),
          core::fmt_count(st.identical).c_str(),
          core::fmt_count(st.missed_crc).c_str());
    }
  }
  t.print(std::cout);

  // --- Distribution skew (Figure 2's headline numbers). ---
  core::CellStatsConfig ccfg;
  ccfg.ks = {1, 2, 4};
  const auto stats = core::collect_cell_stats(*prof, scale, ccfg);
  const auto& h = stats.tcp_cells();
  std::printf(
      "\nchecksum-value distribution over 48-byte cells:\n"
      "  cells               %llu\n"
      "  most common value   0x%04x (%.3f%% of cells; uniform: 0.0015%%)\n"
      "  top 0.1%% of values  %.2f%% of all cells\n"
      "  entropy             %.1f bits of 16\n"
      "  uniformity p-value  %.2e\n",
      static_cast<unsigned long long>(stats.cells_seen()), h.mode(),
      100.0 * h.pmax(), 100.0 * h.top_fraction_mass(0.001), h.entropy_bits(),
      stats::uniformity_p_value(h));

  // --- §5.5 locality of failure: per-file spikes. ---
  // "Sampling the checksum statistics incrementally during each
  // whole-filesystem run showed sharp spikes in the rate of undetected
  // splices, at the level of individual directories or even files."
  {
    core::SpliceRunConfig run_cfg;
    run_cfg.flow = core::paper_flow_config();
    struct Spike {
      std::size_t index;
      double rate;
      std::uint64_t missed;
    };
    std::vector<Spike> spikes;
    for (std::size_t i = 0; i < fs.file_count(); ++i) {
      const util::Bytes file = fs.file(i);
      const core::SpliceStats one =
          core::run_file(run_cfg, util::ByteView(file));
      if (one.remaining == 0 || one.missed_transport == 0) continue;
      spikes.push_back({i,
                        static_cast<double>(one.missed_transport) /
                            static_cast<double>(one.remaining),
                        one.missed_transport});
    }
    std::sort(spikes.begin(), spikes.end(),
              [](const Spike& a, const Spike& b) { return a.rate > b.rate; });
    std::printf(
        "\nlocality of failure (paper §5.5): %zu of %zu files produce any "
        "TCP miss at all; the worst offenders:\n",
        spikes.size(), fs.file_count());
    for (std::size_t i = 0; i < std::min<std::size_t>(5, spikes.size()); ++i) {
      const auto& s = spikes[i];
      std::printf("  file #%zu (%s, %zu bytes): %s%% missed (%s splices)\n",
                  s.index, std::string(fsgen::name(fs.spec(s.index).kind)).c_str(),
                  fs.spec(s.index).size, core::fmt_pct(s.rate).c_str(),
                  core::fmt_count(s.missed).c_str());
    }
  }

  // --- Locality (Table 5's headline). ---
  const auto& lc = stats.local(2);
  std::printf(
      "\n2-cell blocks within 512 bytes of each other:\n"
      "  P[congruent]            %s%%\n"
      "  P[congruent, not identical] %s%%  (uniform: 0.0015%%)\n",
      core::fmt_pct(lc.p_congruent()).c_str(),
      core::fmt_pct(lc.p_congruent_excluding_identical()).c_str());
  return 0;
}
