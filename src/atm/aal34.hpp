// AAL3/4 SAR layer — the comparison point AAL5 replaced.
//
// AAL3/4 spends 4 of every 48 cell-payload bytes on per-cell
// protection: a 2-byte header (segment type, 4-bit sequence number,
// 10-bit MID) and a 2-byte trailer (length indicator + CRC-10 over the
// whole SAR-PDU). That overhead is precisely what makes AAL3/4 immune
// to the packet splices this repository studies: any in-order cell
// drop shorter than 16 cells breaks the sequence-number chain, so a
// splice never even reaches the CPCS length/checksum checks. AAL5
// traded that protection for 4 bytes of goodput per cell and a single
// stronger CRC-32 per packet — the trade the paper's error model
// probes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.hpp"

namespace cksum::atm {

inline constexpr std::size_t kSar34Payload = 44;

enum class SegmentType : std::uint8_t {
  kCom = 0,  ///< continuation of message
  kEom = 1,  ///< end of message
  kBom = 2,  ///< beginning of message
  kSsm = 3,  ///< single-segment message
};

/// CRC-10 (generator x^10+x^9+x^5+x^4+x+1), MSB-first, init 0 — the
/// AAL3/4 SAR-PDU check. Computed over the full 48-byte SAR-PDU with
/// the CRC bits zeroed.
std::uint16_t crc10(util::ByteView data) noexcept;

/// One 48-byte SAR-PDU.
struct Sar34Cell {
  SegmentType st = SegmentType::kCom;
  std::uint8_t sn = 0;    ///< 4-bit sequence number
  std::uint16_t mid = 0;  ///< 10-bit multiplexing id
  std::array<std::uint8_t, kSar34Payload> payload{};
  std::uint8_t li = kSar34Payload;  ///< bytes of payload in use (6 bits)

  /// Serialise to 48 bytes with the CRC-10 filled in.
  std::array<std::uint8_t, 48> encode() const noexcept;

  /// Parse 48 bytes; nullopt if the CRC-10 mismatches.
  static std::optional<Sar34Cell> decode(util::ByteView bytes) noexcept;
};

/// Segment a CPCS-PDU into SAR cells on stream `mid`, sequence numbers
/// continuing from `initial_sn` (AAL3/4 numbers cells per MID stream,
/// so the chain spans packet boundaries).
std::vector<Sar34Cell> aal34_segment(util::ByteView cpcs_pdu,
                                     std::uint16_t mid,
                                     std::uint8_t initial_sn);

/// AAL3/4 CPCS framing: CPI(1) Btag(1) BASize(2) header, payload,
/// zero pad to a 4-byte boundary, AL(1) Etag(1) Length(2) trailer.
/// Btag must equal Etag — a third structural check against fusions.
util::Bytes cpcs34_frame(util::ByteView payload, std::uint8_t tag);

struct Cpcs34Payload {
  util::Bytes payload;
  std::uint8_t tag = 0;
};

/// Parse + validate a CPCS-PDU: Btag==Etag, BASize plausible, Length
/// matches. Returns nullopt on any violation.
std::optional<Cpcs34Payload> cpcs34_parse(util::ByteView pdu);

/// AAL3/4 SAR reassembler for one MID stream. Unlike the AAL5
/// reassembler, cell drops are detected *structurally*: a missing cell
/// breaks the mod-16 sequence chain and aborts the current PDU.
class Aal34Reassembler {
 public:
  struct Result {
    util::Bytes bytes;  ///< reassembled CPCS-PDU bytes
    bool complete = false;
  };

  /// Feed the next received cell. Returns a completed PDU on EOM/SSM.
  /// Cells failing the CRC-10 must be dropped by the caller (decode
  /// returns nullopt); this class handles sequencing.
  std::optional<Result> push(const Sar34Cell& cell);

  std::uint64_t sequence_violations() const noexcept { return seq_errors_; }
  std::uint64_t aborted_pdus() const noexcept { return aborted_; }

 private:
  void abort_current() {
    if (in_progress_) ++aborted_;
    buffer_.clear();
    in_progress_ = false;
  }

  util::Bytes buffer_;
  bool in_progress_ = false;
  bool have_last_sn_ = false;
  std::uint8_t last_sn_ = 0;
  std::uint64_t seq_errors_ = 0;
  std::uint64_t aborted_ = 0;
};

}  // namespace cksum::atm
