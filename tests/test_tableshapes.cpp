// Table-shape regression tests: the qualitative orderings every table
// in EXPERIMENTS.md claims, asserted end-to-end at reduced scale so
// the suite stays fast. These are the repository's contract with the
// paper.
#include <gtest/gtest.h>

#include <cctype>

#include "core/experiments.hpp"

namespace cksum::core {
namespace {

double miss_rate(const SpliceStats& st) {
  return st.remaining == 0 ? 0.0
                           : static_cast<double>(st.missed_transport) /
                                 static_cast<double>(st.remaining);
}

SpliceStats run(const char* fs, alg::Algorithm transport,
                net::ChecksumPlacement placement =
                    net::ChecksumPlacement::kHeader,
                double scale = 0.5) {
  net::PacketConfig cfg;
  cfg.transport = transport;
  cfg.placement = placement;
  return run_profile(fsgen::profile(fs), cfg, scale);
}

constexpr double kUniform = 1.0 / 65535.0;

TEST(TableShapes, Table2_OptIsTheWorstSicsFilesystem) {
  const double opt = miss_rate(run("sics.se:/opt", alg::Algorithm::kInternet));
  const double src1 =
      miss_rate(run("sics.se:/src1", alg::Algorithm::kInternet));
  const double cna = miss_rate(run("sics.se:/cna", alg::Algorithm::kInternet));
  EXPECT_GT(opt, src1);
  EXPECT_GT(opt, cna);
  // And everything is above uniform.
  EXPECT_GT(src1, 2 * kUniform);
  EXPECT_GT(cna, 2 * kUniform);
  EXPECT_GT(opt, 50 * kUniform);
}

TEST(TableShapes, Table8_FletcherBeatsTcpExceptOnU1) {
  // On /opt: both Fletchers beat TCP by >= 10x.
  const double tcp = miss_rate(run("sics.se:/opt", alg::Algorithm::kInternet));
  const double f255 =
      miss_rate(run("sics.se:/opt", alg::Algorithm::kFletcher255));
  const double f256 =
      miss_rate(run("sics.se:/opt", alg::Algorithm::kFletcher256));
  EXPECT_GT(tcp, 10 * f255);
  EXPECT_GT(tcp, 10 * f256);

  // On smeg:/u1 the PBM directory inverts mod-255 Fletcher above TCP.
  const double u1_tcp =
      miss_rate(run("smeg.stanford.edu:/u1", alg::Algorithm::kInternet));
  const double u1_f255 =
      miss_rate(run("smeg.stanford.edu:/u1", alg::Algorithm::kFletcher255));
  const double u1_f256 =
      miss_rate(run("smeg.stanford.edu:/u1", alg::Algorithm::kFletcher256));
  EXPECT_GT(u1_f255, u1_tcp);
  EXPECT_LT(u1_f256, u1_tcp);
}

TEST(TableShapes, Table9_TrailerBeatsHeaderByAnOrderOfMagnitude) {
  const double header =
      miss_rate(run("sics.se:/opt", alg::Algorithm::kInternet));
  const double trailer =
      miss_rate(run("sics.se:/opt", alg::Algorithm::kInternet,
                    net::ChecksumPlacement::kTrailer));
  EXPECT_GT(header, 5 * trailer);
}

TEST(TableShapes, Table10_MatrixShape) {
  const SpliceStats header =
      run("smeg.stanford.edu:/u1", alg::Algorithm::kInternet);
  const SpliceStats trailer =
      run("smeg.stanford.edu:/u1", alg::Algorithm::kInternet,
          net::ChecksumPlacement::kTrailer);
  // Header checksum never rejects an identical splice; trailer rejects
  // most of them and misses far fewer corruptions.
  EXPECT_EQ(header.fail_identical, 0u);
  EXPECT_GT(trailer.fail_identical, trailer.pass_identical);
  EXPECT_LT(trailer.pass_changed * 5, header.pass_changed);
}

TEST(TableShapes, Table7_CompressionRestoresUniformBehaviour) {
  net::PacketConfig cfg;
  const auto& prof = fsgen::profile("sics.se:/opt");
  const double raw = miss_rate(run_profile(prof, cfg, 0.5, false));
  const SpliceStats packed_stats = run_profile(prof, cfg, 0.5, true);
  const double packed = miss_rate(packed_stats);
  EXPECT_GT(raw, 20 * packed);
  EXPECT_LT(packed, 5 * kUniform);
  // Compression also eliminates identical-data splices.
  EXPECT_EQ(packed_stats.identical, 0u);
}


class EveryProfile : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EveryProfile, RunsCleanWithSoundAccounting) {
  const auto& prof = fsgen::all_profiles()[GetParam()];
  net::PacketConfig cfg;
  const SpliceStats st = run_profile(prof, cfg, 0.25);
  EXPECT_GT(st.packets, 100u) << prof.full_name();
  EXPECT_EQ(st.total, st.caught_by_header + st.identical + st.remaining);
  EXPECT_EQ(st.missed_crc, 0u) << prof.full_name();
  EXPECT_GT(st.missed_transport, 0u) << prof.full_name();
  // The above-uniform headline is asserted per-profile at full scale by
  // the bench outputs and in aggregate by AggregateAboveUniform below;
  // a quarter-scale corpus can miss a profile's minority pathological
  // kinds, so here we only require a sane nonzero rate.
  EXPECT_GT(miss_rate(st), 0.3 * kUniform) << prof.full_name();
}

TEST(TableShapes, AggregateAboveUniform) {
  // Summed over all 19 profiles, even quarter-scale corpora put the
  // TCP checksum far above its uniform-data rate.
  net::PacketConfig cfg;
  SpliceStats total;
  for (const auto& prof : fsgen::all_profiles())
    total.merge(run_profile(prof, cfg, 0.25));
  EXPECT_GT(miss_rate(total), 10 * kUniform);
}

INSTANTIATE_TEST_SUITE_P(All, EveryProfile,
                         ::testing::Range<std::size_t>(0, 20),
                         [](const auto& gen_info) {
                           std::string n =
                               fsgen::all_profiles()[gen_info.param].full_name();
                           for (char& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

}  // namespace
}  // namespace cksum::core
