// Data-profile analyzer — the paper's "real data is not uniform"
// lens, applied to captured traffic (docs/TRACE.md).
//
// The SIGCOMM '95 result hinges on the structure of real payloads:
// heavily skewed byte values, long 0x00/0xFF runs, and locally
// correlated 16-bit words, all of which collapse the effective range
// of the Internet checksum. This profiler accumulates exactly those
// statistics over ingested payload bytes, feeding src/stats/
// histograms so the same entropy / pmax / top-mass summaries quoted
// for synthetic corpora (core::CellStatsCollector, Figure 2/3) can be
// reported for a capture and compared side by side.
#pragma once

#include <cstdint>
#include <string>

#include "stats/histogram.hpp"
#include "util/bytes.hpp"

namespace cksum::trace {

/// Run-length statistics for one byte value (0x00 or 0xFF): maximal
/// runs, their total mass, and a log2-bucketed length distribution
/// (bucket i holds runs of length [2^(i-1)+1 .. 2^i], i.e. bit_width).
struct RunStats {
  std::uint64_t runs = 0;
  std::uint64_t run_bytes = 0;
  std::uint64_t max_run = 0;
  stats::Histogram length_log2{33};

  void add_run(std::uint64_t len);
};

class DataProfile {
 public:
  DataProfile();

  /// Fold one packet's payload bytes in: byte-value histogram, 16-bit
  /// word histogram (big-endian, non-overlapping, odd tail ignored),
  /// zero/0xFF run-length stats, and the per-cell TCP-checksum value
  /// distribution over the payload's full 48-byte cells (partial tail
  /// cells are skipped, as in core::CellStatsCollector).
  void add_payload(util::ByteView payload);

  std::uint64_t bytes() const noexcept { return bytes_; }
  std::uint64_t cells() const noexcept { return cells_; }
  const stats::Histogram& byte_values() const noexcept { return byte_; }
  const stats::Histogram& word_values() const noexcept { return word_; }
  const stats::Histogram& cell_checksums() const noexcept { return cell_; }
  const RunStats& zero_runs() const noexcept { return zero_; }
  const RunStats& ff_runs() const noexcept { return ff_; }

  /// Fraction of profiled bytes equal to v (0 when nothing profiled).
  double byte_fraction(std::uint8_t v) const;

  /// The manifest's "profile" sub-object (docs/OBSERVABILITY.md).
  std::string json() const;

 private:
  std::uint64_t bytes_ = 0;
  std::uint64_t cells_ = 0;
  stats::Histogram byte_{256};
  stats::Histogram word_{65536};
  stats::Histogram cell_{65535};  ///< mod-65535 congruence classes
  RunStats zero_;
  RunStats ff_;
};

}  // namespace cksum::trace
