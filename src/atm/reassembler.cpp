#include "atm/reassembler.hpp"

namespace cksum::atm {

std::optional<Reassembler::Pdu> Reassembler::push(const Cell& cell) {
  if (buffer_.size() + kCellPayload > kMaxPduBytes) {
    // The in-progress PDU can no longer be legal; a real SAR entity
    // discards and resynchronises at the next EOM.
    ++oversize_;
    buffer_.clear();
  }
  buffer_.insert(buffer_.end(), cell.payload.begin(), cell.payload.end());
  if (!cell.header.end_of_message()) return std::nullopt;

  Pdu out;
  out.bytes = std::move(buffer_);
  buffer_.clear();
  const Aal5Trailer trailer = parse_trailer(util::ByteView(out.bytes));
  out.length_ok =
      length_consistent(out.bytes.size() / kCellPayload, trailer.length);
  out.crc_ok = crc_ok(util::ByteView(out.bytes));
  return out;
}

}  // namespace cksum::atm
