// §7 ablation: "the 16-bit TCP checksum performed about as well as a
// 10-bit CRC" — sweep the AAL5 CRC width from 6 to 32 bits and find
// where a w-bit CRC's splice miss rate crosses the TCP checksum's
// measured rate on the same corpus.
//
// CRCs scatter uniformly even over skewed data, so a w-bit CRC misses
// at ~2^-w; the TCP checksum's real-data rate (~1e-3) sits near the
// 10-bit CRC line, exactly the paper's claim.
#include <bit>
#include <cstdio>
#include <iostream>

#include "checksum/generic_crc.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"

using namespace cksum;

namespace {

struct WidthResult {
  std::uint64_t remaining = 0;
  std::uint64_t missed = 0;
};

/// Mini splice simulation with a w-bit CRC in the AAL5 role. Header
/// gating is the dominant fast-path case (first cell = pkt1's header,
/// equal lengths); the rare freak cases are irrelevant at this
/// granularity.
WidthResult run_width(const alg::GenericCrc& g, const fsgen::Filesystem& fs) {
  const net::FlowConfig flow = core::paper_flow_config();
  const auto c48 = g.combiner(48);
  const auto c44 = g.combiner(44);
  WidthResult out;

  for (std::size_t f = 0; f < fs.file_count(); ++f) {
    const util::Bytes file = fs.file(f);
    const auto pkts = core::packetize_file(flow, util::ByteView(file));
    std::vector<std::vector<std::uint32_t>> gcells(pkts.size());
    std::vector<std::uint32_t> gcontent(pkts.size());
    std::vector<std::uint32_t> glast44(pkts.size());
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      const auto& pdu = pkts[i].pdu;
      for (std::size_t c = 0; c < pdu.num_cells(); ++c)
        gcells[i].push_back(g.compute(pdu.cell(c)));
      gcontent[i] =
          g.compute(pdu.bytes().first(pdu.bytes().size() - 4));
      glast44[i] = g.compute(pdu.cell(pdu.num_cells() - 1).first(44));
    }

    for (std::size_t i = 0; i + 1 < pkts.size(); ++i) {
      const auto& p1 = pkts[i];
      const auto& p2 = pkts[i + 1];
      if (p1.total_len != p2.total_len || !p2.fast_path_ok) continue;
      const std::size_t n2 = p2.pdu.num_cells();
      atm::for_each_splice(
          p1.pdu.num_cells(), n2, [&](const atm::SpliceSpec& s) {
            if (!(s.mask1 & 1u)) return;  // caught by header checks
            // Identical-data gate via the precomputed cell hashes.
            bool ident1 = true, ident2 = true;
            std::size_t pos = 0;
            std::uint32_t crc = 0;
            bool first = true;
            auto take = [&](const core::SimPacket& src,
                            const std::vector<std::uint32_t>& gsrc,
                            unsigned idx) {
              ident1 = ident1 && src.cells[idx].hash == p1.cells[pos].hash;
              ident2 = ident2 && src.cells[idx].hash == p2.cells[pos].hash;
              crc = first ? gsrc[idx] : c48.combine(crc, gsrc[idx]);
              first = false;
              ++pos;
            };
            for (std::uint32_t m = s.mask1; m; m &= m - 1)
              take(p1, gcells[i],
                   static_cast<unsigned>(std::countr_zero(m)));
            for (std::uint32_t m = s.mask2; m; m &= m - 1)
              take(p2, gcells[i + 1],
                   static_cast<unsigned>(std::countr_zero(m)));
            if (ident1) ident1 = p1.eom_cov_hash == p2.eom_cov_hash;
            if (ident1 || ident2) return;  // benign
            crc = c44.combine(crc, glast44[i + 1]);
            ++out.remaining;
            if (crc == gcontent[i + 1]) ++out.missed;
          });
    }
  }
  return out;
}

}  // namespace

int main() {
  const double scale = core::scale_from_env();
  const auto& prof = fsgen::profile("sics.se:/opt");
  const fsgen::Filesystem fs(prof, 0.5 * scale);

  // Reference: the real TCP checksum on the same profile.
  net::PacketConfig tcp_cfg;
  const core::SpliceStats tcp = core::run_profile(prof, tcp_cfg, 0.5 * scale);
  const double tcp_rate =
      tcp.remaining ? static_cast<double>(tcp.missed_transport) /
                          static_cast<double>(tcp.remaining)
                    : 0.0;

  std::printf(
      "== Ablation: CRC width sweep vs the 16-bit TCP checksum "
      "(sics.se:/opt) ==\n\n");
  std::printf("TCP checksum (16 bits) missed: %s%%\n\n",
              core::fmt_pct(tcp_rate).c_str());

  core::TextTable t({"CRC width", "missed", "remaining", "miss%",
                     "expected 2^-w %"});
  for (const int width : {6, 8, 10, 12, 14, 16, 20, 24, 32}) {
    const alg::GenericCrc g(width, alg::standard_poly(width));
    const WidthResult r = run_width(g, fs);
    t.add_row({std::to_string(width) + "-bit", core::fmt_count(r.missed),
               core::fmt_count(r.remaining),
               core::fmt_pct(r.missed, r.remaining),
               core::fmt_pct(1.0 / g.value_space())});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper §7): the TCP line (%s%%) falls between the "
      "10-bit and 12-bit CRC rows — \"the 16-bit TCP checksum performed "
      "about as well as a 10-bit CRC\".\n",
      core::fmt_pct(tcp_rate).c_str());
  return 0;
}
