// Randomized ARQ soak: indexed scenarios drive all three policies over
// randomized fault regimes (every class the link can inject, at rates
// up to 10%) and check the guarantees docs/ARQ.md makes:
//
//  A1  termination — every scenario ends with each offered payload
//      delivered or abandoned; the event cap is never hit and the
//      simulator never reports a stall;
//  A2  accounting — every link delivery lands in exactly one receiver
//      outcome counter, and both link directions' delivery counts
//      reconcile with the endpoints' examined counts (run_sim checks
//      these and reports them through SimResult::violation);
//  A3  fault-free fidelity — a scenario with both link plans zeroed
//      delivers every payload bitwise-intact with no retransmissions,
//      no abandonment, and no residual errors;
//  A4  CRC-32 residual — under CRC-32 framing an undetected delivery
//      or silent loss is a ~2^-32 event, unobservable at soak volume,
//      so any occurrence is treated as a violation;
//  A5  determinism — periodically a scenario is run twice and the two
//      results compared field-for-field.
//
// Scenario i of master seed S draws all randomness from
// Rng(S).child(i), so a violation reported as (seed, scenario) replays
// deterministically in isolation via `faultlab arqsoak --scenario`.
#pragma once

#include <cstdint>
#include <string>

#include "arq/sim.hpp"

namespace cksum::arq {

struct ArqSoakConfig {
  std::uint64_t seed = 0xA1A1;
  /// Stop once this many link faults have been injected (0 = no
  /// target; run max_scenarios instead).
  std::uint64_t target_faults = 250'000;
  std::uint64_t max_scenarios = ~std::uint64_t{0};
  bool stop_on_violation = true;
};

struct ArqScenarioResult {
  SimResult sim;
  std::uint64_t faults_injected = 0;  ///< both directions combined
  std::uint64_t violations = 0;
  std::string violation_detail;  ///< empty when clean
};

struct ArqSoakResult {
  std::uint64_t scenarios = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t payloads_offered = 0;
  std::uint64_t delivered_ok = 0;
  std::uint64_t residual_undetected = 0;
  std::uint64_t residual_lost = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t violations = 0;
  std::string violation_detail;
  /// Non-empty on violation: a faultlab command line that replays the
  /// offending scenario deterministically.
  std::string reproducer;

  bool ok() const noexcept { return violations == 0; }
};

/// Run one indexed scenario. Fully deterministic in (cfg.seed, index).
ArqScenarioResult run_arq_scenario(const ArqSoakConfig& cfg,
                                   std::uint64_t index);

/// Run scenarios 0, 1, 2, ... (policies rotate so all three are
/// always exercised) until the fault target or scenario cap is
/// reached, or an invariant is violated.
ArqSoakResult run_arq_soak(const ArqSoakConfig& cfg);

/// The reproducer command line for one scenario of a soak config.
std::string arq_reproducer_line(const ArqSoakConfig& cfg,
                                std::uint64_t index);

}  // namespace cksum::arq
