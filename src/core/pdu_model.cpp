#include "core/pdu_model.hpp"

#include "checksum/kernels/kernel.hpp"
#include "net/validate.hpp"
#include "util/hash.hpp"

namespace cksum::core {

namespace {

/// Internet sum of a byte range (even-offset start assumed by callers).
std::uint16_t sum_of(util::ByteView bytes) {
  return alg::kern::internet_sum(bytes);
}

}  // namespace

SimPacket make_sim_packet(const net::PacketConfig& cfg, net::Packet&& pkt) {
  SimPacket sp;
  sp.total_len = pkt.total_length();
  sp.pdu = atm::CpcsPdu::frame(pkt.ip_bytes());
  sp.pkt = std::move(pkt);

  const std::size_t n = sp.pdu.num_cells();
  sp.cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const util::ByteView cell = sp.pdu.cell(i);
    CellPartial cp;
    cp.inet = sum_of(cell);
    cp.f255 = alg::kern::fletcher_block(cell, alg::FletcherMod::kOnes255);
    cp.f256 = alg::kern::fletcher_block(cell, alg::FletcherMod::kTwos256);
    cp.crc = alg::kern::crc32(cell);
    cp.hash = util::hash64(cell);
    cp.kd = alg::kern::koopman_dual(cell);
    cp.ks = alg::kern::koopman_single(cell);
    sp.cells.push_back(cp);
  }

  sp.hdr_require_ipck = cfg.fill_ip_header && !cfg.legacy95_headers;
  sp.hdr_legacy95 = cfg.legacy95_headers;
  sp.hdr_ok_self.resize(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    sp.hdr_ok_self[i] =
        net::check_headers(sp.pdu.cell(i), sp.total_len, sp.hdr_require_ipck,
                           sp.hdr_legacy95) == net::HeaderCheck::kOk
            ? 1
            : 0;
  }

  sp.stored_crc = sp.pdu.trailer().crc;
  sp.crc_head44 = alg::kern::crc32(sp.pdu.cell(n - 1).first(44));
  // Koopman sums over the AAL5 CRC's coverage: whole PDU minus the
  // trailing 4 CRC bytes, i.e. the EOM cell contributes bytes [0, 44).
  sp.eom_kd = alg::kern::koopman_dual(sp.pdu.cell(n - 1).first(44));
  sp.eom_ks = alg::kern::koopman_single(sp.pdu.cell(n - 1).first(44));
  sp.kd_pdu =
      alg::kern::koopman_dual(sp.pdu.bytes().first(sp.pdu.bytes().size() - 4));
  sp.ks_pdu = alg::kern::koopman_single(
      sp.pdu.bytes().first(sp.pdu.bytes().size() - 4));
  std::size_t eom_cov = sp.total_len > (n - 1) * atm::kCellPayload
                            ? sp.total_len - (n - 1) * atm::kCellPayload
                            : 0;
  // Identical-data comparisons ignore the transport check field; in
  // trailer mode it is the last 2 datagram bytes (inside the EOM
  // coverage whenever the fast path applies).
  if (cfg.placement == net::ChecksumPlacement::kTrailer && eom_cov >= 2)
    eom_cov -= 2;
  sp.eom_cov_hash = util::hash64(sp.pdu.cell(n - 1).first(eom_cov));

  // --- Transport partials (case A pieces). ---
  const util::ByteView ip = sp.pkt.ip_bytes();
  const std::size_t len = sp.total_len;
  const bool trailer = cfg.placement == net::ChecksumPlacement::kTrailer;

  // Fast-path regularity: all non-EOM cells fully inside the packet;
  // trailer check bytes (if any) wholly inside the EOM coverage.
  const std::size_t eom_start = (n - 1) * atm::kCellPayload;
  sp.fast_path_ok = len >= eom_start + (trailer ? 2 : 0);

  TransportPartials& tp = sp.tp;
  tp.eom_len = len > eom_start ? len - eom_start : 0;

  // Head prefix: pseudo-header ++ IP bytes [20, min(48, len)).
  {
    util::Bytes head;
    head.resize(net::PseudoHeader::kLen);
    net::PseudoHeader ph;
    const auto hdr = net::Ipv4Header::parse(ip);
    ph.src = hdr->src;
    ph.dst = hdr->dst;
    ph.protocol = hdr->protocol;
    ph.tcp_length = cfg.legacy95_headers
                        ? static_cast<std::uint16_t>(len)
                        : static_cast<std::uint16_t>(len - net::kIpv4HeaderLen);
    ph.write(head.data());
    const std::size_t head_end = std::min<std::size_t>(atm::kCellPayload, len);
    head.insert(head.end(), ip.begin() + net::kIpv4HeaderLen,
                ip.begin() + head_end);

    // Fletcher sums over the prefix as transmitted.
    tp.head_f255 = alg::kern::fletcher_block(util::ByteView(head),
                                             alg::FletcherMod::kOnes255);
    tp.head_f256 = alg::kern::fletcher_block(util::ByteView(head),
                                             alg::FletcherMod::kTwos256);

    // Internet content sum: zero the check field if it lives here.
    if (!trailer) {
      const std::size_t field = net::PseudoHeader::kLen + 16;
      tp.stored = util::load_be16(head.data() + field);
      head[field] = 0;
      head[field + 1] = 0;
    }
    tp.head_sum = sum_of(util::ByteView(head));
  }

  // EOM coverage.
  if (tp.eom_len > 0) {
    util::Bytes eom(ip.begin() + eom_start, ip.begin() + len);
    tp.eom_f255 = alg::kern::fletcher_block(util::ByteView(eom),
                                            alg::FletcherMod::kOnes255);
    tp.eom_f256 = alg::kern::fletcher_block(util::ByteView(eom),
                                            alg::FletcherMod::kTwos256);
    if (trailer && sp.fast_path_ok) {
      // The 2 check bytes are the last 2 coverage bytes; exclude them
      // from the Internet content sum and remember the stored value.
      tp.stored = util::load_be16(eom.data() + eom.size() - 2);
      eom[eom.size() - 2] = 0;
      eom[eom.size() - 1] = 0;
    }
    tp.eom_sum = sum_of(util::ByteView(eom));
  }

  return sp;
}

std::vector<SimPacket> packetize_file(const net::FlowConfig& cfg,
                                      util::ByteView file) {
  std::vector<net::Packet> pkts = net::segment_file(cfg, file);
  std::vector<SimPacket> out;
  out.reserve(pkts.size());
  for (auto& p : pkts) out.push_back(make_sim_packet(cfg.packet, std::move(p)));
  return out;
}

}  // namespace cksum::core
