// Quickstart: the checksum library's public API in one file.
//
//   $ ./examples/quickstart
//
// Computes all the paper's check codes over a sample message and
// demonstrates the incremental and block-combination APIs that power
// the splice simulator.
#include <cstdio>
#include <string_view>

#include "checksum/checksum.hpp"
#include "util/bytes.hpp"

using namespace cksum;

int main() {
  static constexpr std::string_view kMessage =
      "Checksum and CRC algorithms have historically been studied under "
      "the assumption that the data fed to the algorithms was uniformly "
      "distributed.";
  const util::ByteView data(
      reinterpret_cast<const std::uint8_t*>(kMessage.data()),
      kMessage.size());

  // --- One-shot computation. ---
  std::printf("message: %zu bytes of decidedly non-uniform English\n\n",
              data.size());
  std::printf("Internet (TCP/IP) sum : 0x%04x  (check field: 0x%04x)\n",
              alg::internet_sum(data), alg::internet_checksum(data));
  const auto f255 = alg::fletcher_block(data, alg::FletcherMod::kOnes255);
  const auto f256 = alg::fletcher_block(data, alg::FletcherMod::kTwos256);
  std::printf("Fletcher mod 255      : A=0x%02x B=0x%02x\n", f255.a, f255.b);
  std::printf("Fletcher mod 256      : A=0x%02x B=0x%02x\n", f256.a, f256.b);
  std::printf("CRC-32 (AAL5/IEEE)    : 0x%08x\n", alg::crc32(data));
  std::printf("Adler-32              : 0x%08x\n", alg::adler32(data));
  const alg::GenericCrc crc10(10, alg::standard_poly(10));
  std::printf("CRC-10 (ATM OAM poly) : 0x%03x\n\n", crc10.compute(data));

  // --- Incremental computation: feed data in arbitrary chunks. ---
  alg::InternetSum inet;
  inet.update(data.first(7));   // odd-length chunk: parity is tracked
  inet.update(data.subspan(7));
  std::printf("incremental Internet sum matches: %s\n",
              inet.fold() == alg::internet_sum(data) ? "yes" : "NO");

  // --- Block combination: checksum of a concatenation from parts. ---
  const auto left = data.first(60);
  const auto right = data.subspan(60);
  const std::uint16_t combined = alg::internet_combine(
      alg::internet_sum(left), alg::internet_sum(right),
      /*a_odd_length=*/left.size() % 2 == 1);
  std::printf("combined Internet sum matches   : %s\n",
              combined == alg::internet_sum(data) ? "yes" : "NO");

  const std::uint32_t crc_combined = alg::crc32_combine(
      alg::crc32(left), alg::crc32(right), right.size());
  std::printf("combined CRC-32 matches         : %s\n",
              crc_combined == alg::crc32(data) ? "yes" : "NO");

  const auto fl = alg::fletcher_block(left, alg::FletcherMod::kTwos256);
  const auto fr = alg::fletcher_block(right, alg::FletcherMod::kTwos256);
  const auto fc = alg::fletcher_combine(fl, fr, right.size(),
                                        alg::FletcherMod::kTwos256);
  std::printf("combined Fletcher matches       : %s\n",
              fc == f256 ? "yes" : "NO");

  // --- The structural weakness the paper studies. ---
  util::Bytes swapped(data.begin(), data.end());
  std::swap(swapped[0], swapped[2]);  // transpose two 16-bit words' bytes
  std::swap(swapped[1], swapped[3]);
  std::printf(
      "\nswap two 16-bit words:\n"
      "  Internet sum unchanged (undetected): %s\n"
      "  Fletcher-256 changed   (detected)  : %s\n"
      "  CRC-32 changed         (detected)  : %s\n",
      alg::internet_sum(util::ByteView(swapped)) == alg::internet_sum(data)
          ? "yes"
          : "NO",
      alg::fletcher_block(util::ByteView(swapped),
                          alg::FletcherMod::kTwos256) != f256
          ? "yes"
          : "NO",
      alg::crc32(util::ByteView(swapped)) != alg::crc32(data) ? "yes" : "NO");
  return 0;
}
