#include "atm/demux.hpp"

#include "obs/registry.hpp"

namespace cksum::atm {

namespace {

struct DemuxMetrics {
  obs::Counter cells, deliveries, budget_drops, evictions;
};

const DemuxMetrics& dmx() {
  static const DemuxMetrics m = [] {
    obs::Registry& r = obs::Registry::global();
    DemuxMetrics v;
    v.cells = r.counter("demux.cells");
    v.deliveries = r.counter("demux.deliveries");
    v.budget_drops = r.counter("demux.budget_drops");
    v.evictions = r.counter("demux.evictions");
    return v;
  }();
  return m;
}

}  // namespace

void register_atm_metrics() {
  register_reassembler_metrics();
  (void)dmx();
}

std::optional<VcDemux::Delivery> VcDemux::push(const Cell& cell) {
  dmx().cells.add(1);
  ++tick_;
  const Key key{cell.header.vpi, cell.header.vci};
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    if (channels_.size() >= limits_.max_channels && !channels_.empty())
      evict_idlest();
    it = channels_.emplace(key, Channel{}).first;
  }
  it->second.last_used = tick_;

  // Pending budget: shed non-EOM cells once the global buffer is full.
  // EOM cells still pass — they always complete (and thus drain) their
  // channel's PDU, so admitting them only ever reduces pending state.
  if (!cell.header.end_of_message() &&
      pending_ >= limits_.max_pending_cells) {
    ++stats_.budget_drops;
    dmx().budget_drops.add(1);
    return std::nullopt;
  }

  Reassembler& reasm = it->second.reasm;
  const std::size_t before = reasm.pending_cells();
  auto done = reasm.push(cell);
  pending_ -= before;
  pending_ += reasm.pending_cells();

  if (!done) return std::nullopt;
  ++stats_.deliveries;
  dmx().deliveries.add(1);
  Delivery d;
  d.vpi = cell.header.vpi;
  d.vci = cell.header.vci;
  d.pdu = std::move(*done);
  return d;
}

void VcDemux::evict_idlest() {
  auto victim = channels_.begin();
  for (auto it = std::next(victim); it != channels_.end(); ++it) {
    if (it->second.last_used < victim->second.last_used) victim = it;
  }
  pending_ -= victim->second.reasm.pending_cells();
  ++stats_.evictions;
  dmx().evictions.add(1);
  channels_.erase(victim);
}

void VcDemux::reset_channel(std::uint8_t vpi, std::uint16_t vci) {
  const auto it = channels_.find(Key{vpi, vci});
  if (it == channels_.end()) return;
  pending_ -= it->second.reasm.pending_cells();
  it->second.reasm.reset();
}

std::uint64_t VcDemux::oversize_discards() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [key, ch] : channels_) total += ch.reasm.oversize_discards();
  return total;
}

}  // namespace cksum::atm
