#include "atm/aal5.hpp"

#include <stdexcept>

#include "checksum/crc32.hpp"
#include "checksum/kernels/kernel.hpp"

namespace cksum::atm {

CpcsPdu CpcsPdu::frame(util::ByteView payload, std::uint8_t uu,
                       std::uint8_t cpi) {
  if (payload.size() > 0xffff)
    throw std::invalid_argument("CpcsPdu::frame: payload too large");
  const std::size_t with_trailer = payload.size() + kAal5TrailerLen;
  const std::size_t cells =
      (with_trailer + kCellPayload - 1) / kCellPayload;
  const std::size_t total = cells * kCellPayload;

  CpcsPdu pdu;
  pdu.payload_len_ = payload.size();
  pdu.bytes_.assign(total, 0);
  std::copy(payload.begin(), payload.end(), pdu.bytes_.begin());

  std::uint8_t* trailer = pdu.bytes_.data() + total - kAal5TrailerLen;
  trailer[0] = uu;
  trailer[1] = cpi;
  util::store_be16(trailer + 2,
                   static_cast<std::uint16_t>(payload.size()));
  // CRC over everything with the CRC field still zero.
  const std::uint32_t crc =
      alg::kern::crc32(util::ByteView(pdu.bytes_.data(), total - 4));
  util::store_be32(trailer + 4, crc);
  return pdu;
}

std::optional<CpcsPdu> CpcsPdu::from_bytes(util::Bytes bytes) {
  if (bytes.empty() || bytes.size() % kCellPayload != 0) return std::nullopt;
  CpcsPdu pdu;
  pdu.payload_len_ = parse_trailer(util::ByteView(bytes)).length;
  pdu.bytes_ = std::move(bytes);
  if (pdu.payload_len_ + kAal5TrailerLen > pdu.bytes_.size()) return std::nullopt;
  return pdu;
}

Aal5Trailer CpcsPdu::trailer() const noexcept {
  return parse_trailer(util::ByteView(bytes_));
}

Aal5Trailer parse_trailer(util::ByteView pdu_bytes) {
  if (pdu_bytes.size() < kAal5TrailerLen)
    throw std::invalid_argument("parse_trailer: PDU too small");
  const std::uint8_t* t = pdu_bytes.data() + pdu_bytes.size() - kAal5TrailerLen;
  Aal5Trailer out;
  out.uu = t[0];
  out.cpi = t[1];
  out.length = util::load_be16(t + 2);
  out.crc = util::load_be32(t + 4);
  return out;
}

bool crc_ok(util::ByteView pdu_bytes) {
  if (pdu_bytes.size() < kAal5TrailerLen) return false;
  const Aal5Trailer t = parse_trailer(pdu_bytes);
  const std::uint32_t computed =
      alg::kern::crc32(pdu_bytes.first(pdu_bytes.size() - 4));
  return computed == t.crc;
}

bool residue_ok(util::ByteView pdu_bytes) {
  if (pdu_bytes.size() < kAal5TrailerLen) return false;
  // Residue-style verification: run the CRC over the message and the
  // stored check value and compare against a constant. Our software
  // CRC is the reflected (zlib/Ethernet) convention, whose constant-
  // residue identity holds when the check value enters the register
  // least-significant byte first; the trailer stores it big-endian
  // (as AAL5 transmits it), so feed the 4 stored bytes reversed.
  const std::size_t n = pdu_bytes.size();
  std::uint32_t c = alg::kern::crc32(pdu_bytes.first(n - 4));
  const std::uint8_t le[4] = {pdu_bytes[n - 1], pdu_bytes[n - 2],
                              pdu_bytes[n - 3], pdu_bytes[n - 4]};
  c = alg::kern::crc32(c, util::ByteView(le, 4));
  // crc32(M || LE(crc32(M))) == 0x2144DF1C — the reflected-domain
  // image of the classical 0xC704DD7B residue.
  return c == 0x2144DF1Cu;
}

}  // namespace cksum::atm
