// Adler-32 (RFC 1950): Fletcher's idea with 16-bit sums mod 65521.
// Not studied by the paper directly, but included as the natural
// modern comparison point for the distribution and speed benches.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace cksum::alg {

inline constexpr std::uint32_t kAdlerMod = 65521;

/// One-shot Adler-32 (initial value 1, per RFC 1950).
std::uint32_t adler32(util::ByteView data) noexcept;

/// Streaming continuation; pass 1 to start.
std::uint32_t adler32(std::uint32_t adler, util::ByteView data) noexcept;

/// adler32(A ++ B) from adler32(A), adler32(B), |B|.
std::uint32_t adler32_combine(std::uint32_t adler_a, std::uint32_t adler_b,
                              std::size_t len_b) noexcept;

}  // namespace cksum::alg
