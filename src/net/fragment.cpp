#include "net/fragment.hpp"

#include <algorithm>
#include <stdexcept>

namespace cksum::net {

util::Bytes Fragment::to_bytes() const {
  util::Bytes out(kIpv4HeaderLen + payload.size());
  header.write(out.data());
  std::copy(payload.begin(), payload.end(), out.begin() + kIpv4HeaderLen);
  return out;
}

std::vector<Fragment> fragment_datagram(util::ByteView ip_datagram,
                                        std::size_t mtu) {
  if (mtu < kIpv4HeaderLen + 8)
    throw std::invalid_argument("fragment_datagram: mtu too small");
  const auto hdr = Ipv4Header::parse(ip_datagram);
  if (!hdr || ip_datagram.size() < hdr->total_length)
    throw std::invalid_argument("fragment_datagram: bad datagram");

  const util::ByteView payload =
      ip_datagram.subspan(kIpv4HeaderLen, hdr->total_length - kIpv4HeaderLen);
  // Per-fragment payload: largest multiple of 8 fitting the MTU.
  const std::size_t unit = (mtu - kIpv4HeaderLen) / 8 * 8;

  std::vector<Fragment> out;
  std::size_t off = 0;
  while (off < payload.size() || (payload.empty() && off == 0)) {
    const std::size_t len = std::min(unit, payload.size() - off);
    Fragment frag;
    frag.header = *hdr;  // flags (incl. DF) are replaced below
    const bool last = off + len >= payload.size();
    frag.header.frag_off = static_cast<std::uint16_t>(
        (off / 8) | (last ? 0x0000 : 0x2000));
    frag.header.total_length =
        static_cast<std::uint16_t>(kIpv4HeaderLen + len);
    frag.header.header_checksum = 0;
    frag.header.header_checksum = frag.header.compute_checksum();
    frag.payload.assign(payload.begin() + off, payload.begin() + off + len);
    out.push_back(std::move(frag));
    off += len;
    if (payload.empty()) break;
  }
  return out;
}

std::optional<util::Bytes> reassemble(std::vector<Fragment> fragments) {
  if (fragments.empty()) return std::nullopt;
  std::sort(fragments.begin(), fragments.end(),
            [](const Fragment& a, const Fragment& b) {
              return a.offset_bytes() < b.offset_bytes();
            });

  // Structural checks: tiling with no gaps, exactly one final
  // fragment, at the end.
  std::size_t expect = 0;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    const Fragment& f = fragments[i];
    if (f.offset_bytes() != expect) return std::nullopt;
    const bool is_last_slot = i + 1 == fragments.size();
    if (f.more_fragments() == is_last_slot) return std::nullopt;
    expect += f.payload.size();
  }

  // Rebuild: first fragment's header, recomputed length/flags.
  Ipv4Header hdr = fragments.front().header;
  hdr.frag_off = 0;
  hdr.total_length = static_cast<std::uint16_t>(kIpv4HeaderLen + expect);
  hdr.header_checksum = 0;
  hdr.header_checksum = hdr.compute_checksum();

  util::Bytes out(kIpv4HeaderLen + expect);
  hdr.write(out.data());
  std::size_t at = kIpv4HeaderLen;
  for (const Fragment& f : fragments) {
    std::copy(f.payload.begin(), f.payload.end(), out.begin() + at);
    at += f.payload.size();
  }
  return out;
}

}  // namespace cksum::net
