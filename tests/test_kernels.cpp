// Kernel-conformance harness: every registered checksum kernel must be
// bitwise identical to the scalar reference on every input.
//
// Three sweeps, all deterministic (seeds in kernel_testgen.hpp):
//   * exhaustive small lengths 0..256, random and adversarial bytes;
//   * randomized large buffers (up to 64 KiB; 1 MiB in long mode) at
//     all 8 alignment phases of the same underlying data;
//   * every incremental resume split and every combine split of one
//     message, per algorithm.
// Set CKSUM_KERNEL_LONG=1 for the widened soak sweep.
//
// The registry itself is also pinned down: name lookup, "best"
// resolution, the CKSUM_KERNEL environment override (so a CI matrix
// typo fails the suite instead of silently testing the default
// kernel), and the per-kernel dispatch counters.
#include <gtest/gtest.h>

#include <bitset>
#include <cstdlib>
#include <string>

#include "checksum/adler32.hpp"
#include "checksum/crc32.hpp"
#include "checksum/fletcher.hpp"
#include "checksum/fletcher32.hpp"
#include "checksum/internet.hpp"
#include "checksum/kernels/kernel.hpp"
#include "checksum/koopman.hpp"
#include "kernel_testgen.hpp"
#include "obs/registry.hpp"

namespace cksum::alg::kern {
namespace {

using util::Bytes;
using util::ByteView;

/// Compare one kernel against the scalar reference on one buffer, all
/// seven algorithms. The streaming entry points are started from their
/// conventional initial values (0 for CRC-32, 1 for Adler-32) and, to
/// cover resumed calls, from a nonzero prior state.
void expect_matches_scalar(const Kernel& k, ByteView data,
                           const std::string& context) {
  const Kernel& ref = scalar_kernel();
  EXPECT_EQ(k.internet_sum(data), ref.internet_sum(data)) << context;
  EXPECT_EQ(k.koopman_dual(data), ref.koopman_dual(data)) << context;
  EXPECT_EQ(k.koopman_single(data), ref.koopman_single(data)) << context;
  EXPECT_EQ(k.fletcher(data, FletcherMod::kOnes255),
            ref.fletcher(data, FletcherMod::kOnes255))
      << context;
  EXPECT_EQ(k.fletcher(data, FletcherMod::kTwos256),
            ref.fletcher(data, FletcherMod::kTwos256))
      << context;
  EXPECT_EQ(k.fletcher32(data), ref.fletcher32(data)) << context;
  EXPECT_EQ(k.adler32(1u, data), ref.adler32(1u, data)) << context;
  EXPECT_EQ(k.crc32(0u, data), ref.crc32(0u, data)) << context;
  // Resumed from a prior state: continuation must agree too.
  EXPECT_EQ(k.adler32(0x00070003u, data), ref.adler32(0x00070003u, data))
      << context;
  EXPECT_EQ(k.crc32(0xDEADBEEFu, data), ref.crc32(0xDEADBEEFu, data))
      << context;
}

class PerKernel : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    // Unavailable kernels degrade to a safe fallback when called, so
    // the sweep would pass while silently testing the fallback path —
    // skip loudly instead so the report shows what was actually
    // covered on this machine.
    const Kernel& k = kernel();
    if (!kernel_available(k)) {
      const char* why = kernel_unavailable_reason(k);
      GTEST_SKIP() << k.name
                   << " unavailable here: " << (why != nullptr ? why : "?");
    }
  }
  const Kernel& kernel() const { return kernels()[GetParam()]; }
  std::string kernel_name() const { return std::string(kernel().name); }
};

std::string kernel_param_name(
    const ::testing::TestParamInfo<std::size_t>& info) {
  return std::string(kernels()[info.param].name);
}

TEST_P(PerKernel, ExhaustiveSmallLengths) {
  for (std::size_t len = 0; len <= 256; ++len) {
    const Bytes data =
        testgen::random_bytes(testgen::kConformanceSeed + len, len);
    expect_matches_scalar(kernel(), ByteView(data),
                          kernel_name() + " len=" + std::to_string(len));
  }
}

TEST_P(PerKernel, EdgePatterns) {
  for (const std::size_t len : {1u, 8u, 48u, 255u, 256u, 510u, 4096u}) {
    for (const Bytes& data : testgen::edge_patterns(len)) {
      expect_matches_scalar(
          kernel(), ByteView(data),
          kernel_name() + " pattern len=" + std::to_string(len) +
              " first=" + std::to_string(data.empty() ? 0 : data[0]));
    }
  }
}

TEST_P(PerKernel, LargeBuffersAtAllAlignments) {
  const std::size_t cap = testgen::long_mode() ? (1u << 20) : (1u << 16);
  const testgen::AlignedPool pool(testgen::kConformanceSeed ^ 0xA11C, cap);
  for (const std::size_t len : testgen::sweep_lengths()) {
    if (len > pool.capacity()) continue;
    for (std::size_t align = 0; align < 8; ++align) {
      const ByteView data = pool.view(align, len);
      expect_matches_scalar(kernel(), data,
                            kernel_name() + " len=" + std::to_string(len) +
                                " align=" + std::to_string(align));
    }
  }
}

TEST_P(PerKernel, EveryResumeSplit) {
  const Kernel& k = kernel();
  const Kernel& ref = scalar_kernel();
  const std::size_t n = testgen::split_message_len();
  const Bytes data = testgen::random_bytes(testgen::kConformanceSeed ^ n, n);
  const ByteView whole(data);

  const std::uint32_t crc_whole = ref.crc32(0u, whole);
  const std::uint32_t adler_whole = ref.adler32(1u, whole);
  const std::uint16_t inet_whole = ref.internet_sum(whole);

  for (std::size_t split = 0; split <= n; ++split) {
    const ByteView x = whole.first(split);
    const ByteView y = whole.subspan(split);
    EXPECT_EQ(k.crc32(k.crc32(0u, x), y), crc_whole) << "split=" << split;
    EXPECT_EQ(k.adler32(k.adler32(1u, x), y), adler_whole)
        << "split=" << split;
    // The sum algorithms have no streaming state object in the kernel
    // interface; resuming is the combine rule, checked below.
    EXPECT_EQ(internet_combine(k.internet_sum(x), k.internet_sum(y),
                               split % 2 == 1),
              inet_whole)
        << "split=" << split;
  }
}

TEST_P(PerKernel, EveryCombineSplit) {
  const Kernel& k = kernel();
  const Kernel& ref = scalar_kernel();
  const std::size_t n = testgen::split_message_len();
  const Bytes data =
      testgen::random_bytes(testgen::kConformanceSeed ^ (n + 1), n);
  const ByteView whole(data);

  const std::uint32_t crc_whole = ref.crc32(0u, whole);
  const std::uint32_t adler_whole = ref.adler32(1u, whole);
  const FletcherPair f255_whole = ref.fletcher(whole, FletcherMod::kOnes255);
  const FletcherPair f256_whole = ref.fletcher(whole, FletcherMod::kTwos256);
  const Fletcher32Pair f32_whole = ref.fletcher32(whole);
  const KoopmanDualPair kd_whole = ref.koopman_dual(whole);
  const std::uint64_t ks_whole = ref.koopman_single(whole);

  for (std::size_t split = 0; split <= n; ++split) {
    const ByteView x = whole.first(split);
    const ByteView y = whole.subspan(split);
    EXPECT_EQ(crc32_combine(k.crc32(0u, x), k.crc32(0u, y), y.size()),
              crc_whole)
        << "split=" << split;
    EXPECT_EQ(adler32_combine(k.adler32(1u, x), k.adler32(1u, y), y.size()),
              adler_whole)
        << "split=" << split;
    for (const FletcherMod mod :
         {FletcherMod::kOnes255, FletcherMod::kTwos256}) {
      EXPECT_EQ(fletcher_combine(k.fletcher(x, mod), k.fletcher(y, mod),
                                 y.size(), mod),
                mod == FletcherMod::kOnes255 ? f255_whole : f256_whole)
          << "split=" << split;
    }
    // Fletcher-32 combines in 16-bit words, so the law only applies
    // when the suffix starts on a word boundary.
    if (split % 2 == 0) {
      EXPECT_EQ(fletcher32_combine(k.fletcher32(x), k.fletcher32(y),
                                   (y.size() + 1) / 2),
                f32_whole)
          << "split=" << split;
    }
    // The Koopman sums combine in zero-padded 64-bit blocks, so the
    // law is exact only when the suffix starts on a block boundary.
    if (split % kKoopmanBlockBytes == 0) {
      EXPECT_EQ(koopman_dual_value(koopman_dual_combine(
                    k.koopman_dual(x), k.koopman_dual(y),
                    koopman_block_count(y.size()))),
                koopman_dual_value(kd_whole))
          << "split=" << split;
      EXPECT_EQ(koopman_single_combine(k.koopman_single(x),
                                       k.koopman_single(y)),
                ks_whole)
          << "split=" << split;
    }
  }
}

TEST_P(PerKernel, InternetOddOffsetsAndTails) {
  // The SWAR kernel's composition rule must reproduce the byte-swapped
  // accumulation of blocks at odd source offsets, including the 0x0000
  // vs 0xFFFF representative at every offset/length phase.
  const Kernel& k = kernel();
  const Kernel& ref = scalar_kernel();
  const Bytes data =
      testgen::random_bytes(testgen::kConformanceSeed ^ 0x0DD, 1024);
  for (std::size_t off = 0; off < 16; ++off) {
    for (const std::size_t len : {0u, 1u, 2u, 7u, 8u, 9u, 63u, 64u, 65u,
                                  255u, 256u, 1000u}) {
      const ByteView piece = ByteView(data).subspan(off, len);
      EXPECT_EQ(k.internet_sum(piece), ref.internet_sum(piece))
          << "off=" << off << " len=" << len;
    }
  }
  // Zero-class representatives at every alignment phase: all-zero
  // bytes must fold to 0x0000, all-ones to 0xFFFF, never swapped into
  // each other by the SWAR lane repair.
  const Bytes zeros(512, 0x00);
  const Bytes ones(512, 0xff);
  for (std::size_t off = 0; off < 8; ++off) {
    for (const std::size_t len : {8u, 16u, 64u, 504u}) {
      EXPECT_EQ(k.internet_sum(ByteView(zeros).subspan(off, len)), 0x0000)
          << "off=" << off << " len=" << len;
      EXPECT_EQ(k.internet_sum(ByteView(ones).subspan(off, len)), 0xffff)
          << "off=" << off << " len=" << len;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, PerKernel,
                         ::testing::Range<std::size_t>(0, kernels().size()),
                         kernel_param_name);

TEST(KernelCombineProperty, FletcherMod255EdgeCases) {
  // When |Y| is a multiple of 255 the y_len·A(X) term of the combine
  // law vanishes mod 255 — exactly the regime where a combine
  // implementation that reduced y_len incorrectly (or dropped the
  // term) would still *look* right on random splits. Pin it down for
  // every kernel, including zero-length halves on either side.
  for (const std::size_t x_len : {0u, 1u, 254u, 255u, 256u, 300u}) {
    for (const std::size_t y_len : {0u, 1u, 255u, 510u, 1020u}) {
      Bytes data = testgen::random_bytes(
          testgen::kConformanceSeed ^ (x_len * 4099 + y_len), x_len + y_len);
      const ByteView whole(data);
      const ByteView x = whole.first(x_len);
      const ByteView y = whole.subspan(x_len);
      for (const Kernel& k : kernels()) {
        for (const FletcherMod mod :
             {FletcherMod::kOnes255, FletcherMod::kTwos256}) {
          EXPECT_EQ(fletcher_combine(k.fletcher(x, mod), k.fletcher(y, mod),
                                     y_len, mod),
                    scalar_kernel().fletcher(whole, mod))
              << k.name << " |x|=" << x_len << " |y|=" << y_len << " mod "
              << modulus(mod);
        }
      }
    }
  }
}

TEST(KernelRegistry, LookupAndBestResolution) {
  ASSERT_GE(kernels().size(), 5u);
  EXPECT_NE(find_kernel("scalar"), nullptr);
  EXPECT_NE(find_kernel("slicing"), nullptr);
  EXPECT_NE(find_kernel("swar"), nullptr);
  EXPECT_NE(find_kernel("chorba"), nullptr);
  EXPECT_NE(find_kernel("clmul"), nullptr);
  EXPECT_EQ(find_kernel("no-such-kernel"), nullptr);
  EXPECT_EQ(find_kernel(""), nullptr);

  // "best" is the highest tier *available on this machine*: clmul
  // with carry-less-multiply hardware, else chorba. Unavailable
  // kernels stay listed but never win the resolution.
  const Kernel* best = find_kernel("best");
  ASSERT_NE(best, nullptr);
  EXPECT_TRUE(kernel_available(*best));
  for (const Kernel& k : kernels()) {
    if (kernel_available(k)) {
      EXPECT_LE(k.tier, best->tier) << k.name;
    }
  }
  const Kernel* clmul = find_kernel("clmul");
  EXPECT_EQ(best->name, kernel_available(*clmul) ? "clmul" : "chorba");

  // The portable tiers carry no availability probe at all, and any
  // unavailable kernel must explain itself.
  for (const char* portable : {"scalar", "slicing", "swar", "chorba"})
    EXPECT_TRUE(kernel_available(*find_kernel(portable))) << portable;
  for (const Kernel& k : kernels()) {
    if (!kernel_available(k)) {
      EXPECT_NE(kernel_unavailable_reason(k), nullptr) << k.name;
    }
  }

  EXPECT_EQ(scalar_kernel().name, "scalar");
  EXPECT_EQ(scalar_kernel().tier, 0);
  for (const Kernel& k : kernels()) {
    EXPECT_NE(k.internet_sum, nullptr);
    EXPECT_NE(k.fletcher, nullptr);
    EXPECT_NE(k.fletcher32, nullptr);
    EXPECT_NE(k.adler32, nullptr);
    EXPECT_NE(k.crc32, nullptr);
    EXPECT_NE(k.koopman_dual, nullptr);
    EXPECT_NE(k.koopman_single, nullptr);
  }
}

TEST(KernelRegistry, EnvSelectionHonored) {
  // When the CI matrix exports CKSUM_KERNEL, the active kernel must be
  // exactly that one — a typo in the matrix must fail here rather than
  // silently testing the default.
  const char* env = std::getenv(kKernelEnv);
  if (env == nullptr) {
    EXPECT_EQ(active_kernel().tier, find_kernel("best")->tier);
    return;
  }
  const Kernel* want = find_kernel(env);
  ASSERT_NE(want, nullptr) << "CKSUM_KERNEL names unknown kernel '" << env
                           << "'";
  if (!kernel_available(*want)) {
    // A CI leg exporting CKSUM_KERNEL=clmul on hardware without the
    // instructions: the lazy resolution falls back to best rather
    // than crashing or pinning an unrunnable kernel. (The clmul CI
    // leg probes first and skips, so reaching this branch there means
    // the probe and the registry disagree — worth the failure.)
    EXPECT_EQ(active_kernel().name, find_kernel("best")->name)
        << "unavailable CKSUM_KERNEL value must fall back to best";
    return;
  }
  EXPECT_EQ(active_kernel().name, want->name);
}

TEST(KernelRegistry, SelectKernelSwitchesDispatch) {
  const std::string before(active_kernel().name);
  const Bytes data = testgen::random_bytes(testgen::kConformanceSeed, 777);
  const std::uint32_t want = scalar_kernel().crc32(0u, ByteView(data));
  std::string last;
  for (const Kernel& k : kernels()) {
    if (!kernel_available(k)) {
      // Selecting an unavailable kernel must refuse and leave the
      // current selection alone.
      EXPECT_FALSE(select_kernel(k.name)) << k.name;
      continue;
    }
    ASSERT_TRUE(select_kernel(k.name));
    EXPECT_EQ(active_kernel().name, k.name);
    EXPECT_EQ(crc32(ByteView(data)), want) << k.name;
    EXPECT_EQ(internet_sum(ByteView(data)),
              scalar_kernel().internet_sum(ByteView(data)))
        << k.name;
    last = std::string(k.name);
  }
  EXPECT_FALSE(select_kernel("no-such-kernel"));
  // Refused names leave the selection unchanged (still the last
  // selectable kernel of the loop), and the original is restorable.
  EXPECT_EQ(active_kernel().name, last);
  ASSERT_TRUE(select_kernel(before));
  EXPECT_EQ(active_kernel().name, before);
}

TEST(KernelRegistry, SelectionReasonIsNonEmptyAndTracksExplicitPicks) {
  const std::string before(active_kernel().name);
  // Whatever the current source (env, default, explicit), the reason
  // must be a non-empty sentence.
  EXPECT_FALSE(kernel_selection_reason().empty());
  ASSERT_TRUE(select_kernel("scalar"));
  EXPECT_NE(kernel_selection_reason().find("explicit"), std::string::npos);
  ASSERT_TRUE(select_kernel(before));
}

TEST(ChorbaKernel, SparseMultipleDividesGenerator) {
  // Re-prove from scratch that the chorba kernel's convolution
  // polynomial M = x^274 + x^93 + x^75 + x^19 + x^11 + 1 (see
  // scripts/find_sparse_multiple.py) is a multiple of the CRC-32
  // generator G = 0x104C11DB7 over GF(2) — the entire correctness
  // argument for eliminating words with it. (That the kernel's shift
  // constants implement *this* M is what the differential sweeps
  // establish; this test pins the algebra those constants encode.)
  std::bitset<275> m;
  for (const int e : {274, 93, 75, 19, 11, 0}) m.set(e);
  std::bitset<275> g;
  for (int i = 0; i <= 32; ++i)
    if ((0x104C11DB7ull >> i) & 1) g.set(i);
  for (int d = 274; d >= 32; --d)
    if (m.test(static_cast<std::size_t>(d)))
      m ^= g << static_cast<std::size_t>(d - 32);
  EXPECT_TRUE(m.none()) << "remainder of M / G is nonzero";
}

TEST(ChorbaKernel, ConvolutionBlockBoundary) {
  // Crafted inputs spanning the convolution's structural boundaries:
  // the switch from the bitwise small path to the word convolution at
  // 64 bytes (8 words = carry window + first eliminable word), and
  // the first few advances of the five-word carry window. Random and
  // all-ones payloads at every length across the region, from both a
  // fresh and a resumed CRC state.
  const Kernel* chorba = find_kernel("chorba");
  ASSERT_NE(chorba, nullptr);
  const Kernel& ref = scalar_kernel();
  for (std::size_t len = 40; len <= 176; ++len) {
    const Bytes rnd = testgen::random_bytes(
        testgen::kConformanceSeed ^ (0xCB0 + len), len);
    const Bytes ones(len, 0xFF);
    for (const Bytes* data : {&rnd, &ones}) {
      const ByteView v(*data);
      EXPECT_EQ(chorba->crc32(0u, v), ref.crc32(0u, v)) << "len=" << len;
      EXPECT_EQ(chorba->crc32(0xDEADBEEFu, v), ref.crc32(0xDEADBEEFu, v))
          << "len=" << len;
    }
  }
  // Single-byte impulses walking across three full window advances:
  // each position exercises a distinct combination of the multiple's
  // tap shifts (including the one-bit spills w<<63 and w>>57) and the
  // carry handoff into the bitwise tail.
  for (const std::size_t len : {64u, 65u, 127u, 128u, 160u}) {
    Bytes data(len, 0x00);
    for (std::size_t pos = 0; pos < len; ++pos) {
      for (const std::uint8_t impulse : {0x01, 0x80}) {
        data[pos] = impulse;
        const ByteView v(data);
        EXPECT_EQ(chorba->crc32(0u, v), ref.crc32(0u, v))
            << "len=" << len << " pos=" << pos << " impulse=" << int(impulse);
        data[pos] = 0x00;
      }
    }
  }
}

#ifndef OBS_DISABLE
TEST(KernelRegistry, DispatchCountsIntoActiveKernelCounters) {
  register_kernel_metrics();
  const std::string name(active_kernel().name);
  const std::string calls_metric = "kernel." + name + ".calls";
  const std::string bytes_metric = "kernel." + name + ".bytes";

  const auto value = [&](const std::string& metric) -> std::uint64_t {
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    const obs::MetricValue* m = snap.find(metric);
    return m != nullptr ? m->value : 0;
  };

  const std::uint64_t calls_before = value(calls_metric);
  const std::uint64_t bytes_before = value(bytes_metric);
  const Bytes data(1000, 0xAB);
  (void)crc32(ByteView(data));
  (void)internet_sum(ByteView(data));
  EXPECT_EQ(value(calls_metric), calls_before + 2);
  EXPECT_EQ(value(bytes_metric), bytes_before + 2000);

  // The TLS batching must stay exact for tiny frames too: counts
  // reach the snapshot through the registered snapshot source, not
  // per-call registry traffic.
  const Bytes tiny(3, 0x5A);
  for (int i = 0; i < 10; ++i) (void)crc32(ByteView(tiny));
  EXPECT_EQ(value(calls_metric), calls_before + 12);
  EXPECT_EQ(value(bytes_metric), bytes_before + 2030);

  // Availability gauges: 0/1 per kernel, 1 for the active one.
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  for (const Kernel& k : kernels()) {
    const obs::MetricValue* m =
        snap.find("kernel." + std::string(k.name) + ".available");
    ASSERT_NE(m, nullptr) << k.name;
    EXPECT_EQ(m->gauge, kernel_available(k) ? 1 : 0) << k.name;
  }
}
#endif

}  // namespace
}  // namespace cksum::alg::kern
