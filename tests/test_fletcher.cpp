// Fletcher checksum (mod 255 and mod 256): end-weighted definition,
// block composition, check-byte solving, and the congruence properties
// the paper's analysis turns on.
#include <gtest/gtest.h>

#include "checksum/fletcher.hpp"
#include "util/rng.hpp"

namespace cksum::alg {
namespace {

using util::ByteView;
using util::Bytes;

Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  Bytes b(n);
  util::Rng rng(seed);
  rng.fill(b);
  return b;
}

/// Reference: direct evaluation of the paper's definition — A = Σ dᵢ,
/// B = Σ (position from end) · dᵢ, both mod M.
FletcherPair reference_pair(ByteView data, FletcherMod mod) {
  const std::uint64_t m = modulus(mod);
  std::uint64_t a = 0, b = 0;
  const std::size_t n = data.size();
  for (std::size_t i = 0; i < n; ++i) {
    a += data[i];
    b += static_cast<std::uint64_t>(n - i) * data[i];
  }
  return {static_cast<std::uint32_t>(a % m), static_cast<std::uint32_t>(b % m)};
}

class FletcherBothMods : public ::testing::TestWithParam<FletcherMod> {};

TEST_P(FletcherBothMods, RunningFormMatchesEndWeightedDefinition) {
  const FletcherMod mod = GetParam();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Bytes data = random_bytes(seed, 48 + seed * 31);
    EXPECT_EQ(fletcher_block(ByteView(data), mod),
              reference_pair(ByteView(data), mod));
  }
}

TEST_P(FletcherBothMods, NaiveImplementationAgrees) {
  const FletcherMod mod = GetParam();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Bytes data = random_bytes(seed + 40, 17 + seed * 101);
    EXPECT_EQ(fletcher_block_naive(ByteView(data), mod),
              fletcher_block(ByteView(data), mod));
  }
}

TEST_P(FletcherBothMods, EmptyBlockIsZero) {
  EXPECT_EQ(fletcher_block(ByteView{}, GetParam()), (FletcherPair{0, 0}));
}

TEST_P(FletcherBothMods, CombineMatchesConcatenation) {
  const FletcherMod mod = GetParam();
  util::Rng rng(77);
  for (int trial = 0; trial < 32; ++trial) {
    const Bytes x = random_bytes(100 + trial, rng.below(100) + 1);
    const Bytes y = random_bytes(200 + trial, rng.below(100) + 1);
    Bytes xy = x;
    xy.insert(xy.end(), y.begin(), y.end());
    const auto px = fletcher_block(ByteView(x), mod);
    const auto py = fletcher_block(ByteView(y), mod);
    EXPECT_EQ(fletcher_combine(px, py, y.size(), mod),
              fletcher_block(ByteView(xy), mod));
  }
}

TEST_P(FletcherBothMods, ShiftIsCombineWithZeroTail) {
  // A block followed by `t` zero bytes: the B term gains t·A (zeros
  // contribute nothing themselves).
  const FletcherMod mod = GetParam();
  const Bytes x = random_bytes(5, 48);
  for (std::size_t t : {0u, 1u, 48u, 100u, 255u, 256u, 1000u}) {
    Bytes padded = x;
    padded.insert(padded.end(), t, 0x00);
    EXPECT_EQ(fletcher_shift(fletcher_block(ByteView(x), mod), t, mod),
              fletcher_block(ByteView(padded), mod))
        << "t=" << t;
  }
}

TEST_P(FletcherBothMods, IncrementalMatchesOneShot) {
  const FletcherMod mod = GetParam();
  const Bytes data = random_bytes(9, 777);
  FletcherSum s(mod);
  s.update(ByteView(data).first(100));
  s.update(ByteView(data).subspan(100, 300));
  s.update(ByteView(data).subspan(400));
  EXPECT_EQ(s.pair(), fletcher_block(ByteView(data), mod));
}

/// Check bytes: all (message length, check position) combinations that
/// appear in the packet formats must produce sum-to-zero messages.
struct CheckBytesCase {
  std::size_t len;
  std::size_t pos;  // index of first check byte
};

class FletcherCheckBytes
    : public ::testing::TestWithParam<std::tuple<FletcherMod, int>> {};

TEST_P(FletcherCheckBytes, SolvedMessageSumsToZero) {
  const auto [mod, idx] = GetParam();
  static constexpr CheckBytesCase kCases[] = {
      {308, 28},   // header-placed transport check in the coverage string
      {310, 308},  // trailer-placed
      {100, 0},    // degenerate: checksum first
      {100, 98},   // checksum last
      {100, 50},   // middle
      {2, 0},      // nothing but the check bytes
      {53, 17},
  };
  const CheckBytesCase c = kCases[idx];
  Bytes msg = random_bytes(static_cast<std::uint64_t>(idx) * 7 + 1, c.len);
  msg[c.pos] = 0;
  msg[c.pos + 1] = 0;
  const FletcherPair rest = fletcher_block(ByteView(msg), mod);
  const std::size_t u = c.len - c.pos;
  const auto [x, y] = fletcher_check_bytes(rest, u, mod);
  msg[c.pos] = x;
  msg[c.pos + 1] = y;
  EXPECT_TRUE(fletcher_verify(ByteView(msg), mod))
      << "len=" << c.len << " pos=" << c.pos;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FletcherCheckBytes,
    ::testing::Combine(::testing::Values(FletcherMod::kOnes255,
                                         FletcherMod::kTwos256),
                       ::testing::Range(0, 7)));

TEST(Fletcher255, ZeroAndFFCongruent) {
  // The mod-255 pathology: 0x00 and 0xFF are both zero, so swapping
  // them anywhere leaves the checksum unchanged.
  Bytes a = {0x00, 0x12, 0xff, 0x34, 0x00, 0xff};
  Bytes b = {0xff, 0x12, 0x00, 0x34, 0xff, 0x00};
  EXPECT_EQ(fletcher_block(ByteView(a), FletcherMod::kOnes255),
            fletcher_block(ByteView(b), FletcherMod::kOnes255));
  // ...but mod 256 distinguishes them.
  EXPECT_NE(fletcher_block(ByteView(a), FletcherMod::kTwos256),
            fletcher_block(ByteView(b), FletcherMod::kTwos256));
}

TEST(Fletcher255, RunOf255sInvisible) {
  const Bytes base = random_bytes(3, 40);
  Bytes padded = base;
  padded.insert(padded.begin() + 20, 17, 0xff);
  // Inserting 0xFF bytes changes positions of earlier bytes, so B
  // changes... unless the inserted run is congruent-silent. Check the
  // A term only: A is unchanged because 255 ≡ 0 (mod 255).
  EXPECT_EQ(fletcher_block(ByteView(base), FletcherMod::kOnes255).a,
            fletcher_block(ByteView(padded), FletcherMod::kOnes255).a);
}

TEST(Fletcher256, PositionSensitivity) {
  // Unlike the Internet checksum, Fletcher detects word swaps.
  Bytes a = {0x12, 0x34, 0x56, 0x78};
  Bytes b = {0x56, 0x78, 0x12, 0x34};
  EXPECT_NE(fletcher_block(ByteView(a), FletcherMod::kTwos256),
            fletcher_block(ByteView(b), FletcherMod::kTwos256));
  EXPECT_NE(fletcher_block(ByteView(a), FletcherMod::kOnes255),
            fletcher_block(ByteView(b), FletcherMod::kOnes255));
}

TEST(Fletcher, CellShiftColouring) {
  // The paper's §5.2 observation: moving a 48-byte cell by a multiple
  // of 48 changes its B contribution by 48·A mod M; with A ≠ 0 the
  // same content at different cell offsets contributes differently
  // ("colouring").
  const Bytes cell = random_bytes(21, 48);
  const auto p255 = fletcher_block(ByteView(cell), FletcherMod::kOnes255);
  ASSERT_NE(p255.a, 0u);
  const auto shifted = fletcher_shift(p255, 48, FletcherMod::kOnes255);
  EXPECT_NE(p255.b, shifted.b);
}

TEST(Fletcher, Mod255CellShiftPeriodIs85) {
  // 48·k ≡ 0 (mod 255) first at k = 85; mod 256 first at k = 16 —
  // the paper's "85 and 16" cell-colouring periods.
  int k255 = 0, k256 = 0;
  for (int k = 1; k <= 512; ++k) {
    if (48 * k % 255 == 0) { k255 = k; break; }
  }
  for (int k = 1; k <= 512; ++k) {
    if (48 * k % 256 == 0) { k256 = k; break; }
  }
  EXPECT_EQ(k255, 85);
  EXPECT_EQ(k256, 16);
}

INSTANTIATE_TEST_SUITE_P(BothMods, FletcherBothMods,
                         ::testing::Values(FletcherMod::kOnes255,
                                           FletcherMod::kTwos256));

}  // namespace
}  // namespace cksum::alg
