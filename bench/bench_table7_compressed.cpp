// Table 7: CRC and TCP checksum results over LZW-compressed data —
// compressing sics.se:/opt (the paper's worst filesystem for the TCP
// checksum) restores near-uniform behaviour.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

using namespace cksum;

int main() {
  const double scale = core::scale_from_env();
  const auto& prof = fsgen::profile("sics.se:/opt");
  const net::PacketConfig cfg;

  const core::SpliceStats raw = core::run_profile(prof, cfg, scale, false);
  const core::SpliceStats packed = core::run_profile(prof, cfg, scale, true);

  std::printf(
      "== Table 7: CRC and TCP checksum results, LZW-compressed data "
      "(sics.se:/opt) ==\n\n");
  core::TextTable t({"", "uncompressed", "compressed"});
  t.add_row({"Total", core::fmt_count(raw.total), core::fmt_count(packed.total)});
  t.add_row({"Caught by Header", core::fmt_count(raw.caught_by_header),
             core::fmt_count(packed.caught_by_header)});
  t.add_row({"Identical data", core::fmt_count(raw.identical),
             core::fmt_count(packed.identical)});
  t.add_row({"Remaining", core::fmt_count(raw.remaining),
             core::fmt_count(packed.remaining)});
  t.add_row({"Missed by CRC (%)", core::fmt_pct(raw.missed_crc, raw.remaining),
             core::fmt_pct(packed.missed_crc, packed.remaining)});
  t.add_row({"Missed by TCP (%)",
             core::fmt_pct(raw.missed_transport, raw.remaining),
             core::fmt_pct(packed.missed_transport, packed.remaining)});
  t.print(std::cout);

  const double uniform = alg::uniform_miss_rate(alg::Algorithm::kInternet);
  std::printf(
      "\nuniform-data expectation: %s%%. Paper: compression brings the "
      "miss rate from ~0.17%% back to ~the uniform rate (a ~100x "
      "improvement).\n",
      core::fmt_pct(uniform).c_str());
  return 0;
}
