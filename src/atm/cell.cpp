#include "atm/cell.hpp"

#include <algorithm>

namespace cksum::atm {

std::uint8_t compute_hec(const std::uint8_t header4[4]) noexcept {
  // CRC-8, polynomial x^8 + x^2 + x + 1, MSB-first, init 0.
  std::uint8_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc ^= header4[i];
    for (int b = 0; b < 8; ++b)
      crc = static_cast<std::uint8_t>((crc & 0x80) ? (crc << 1) ^ 0x07
                                                   : (crc << 1));
  }
  return static_cast<std::uint8_t>(crc ^ 0x55);  // I.432 coset
}

void CellHeader::write(std::uint8_t* out) const noexcept {
  out[0] = static_cast<std::uint8_t>((gfc << 4) | ((vpi >> 4) & 0xf));
  out[1] = static_cast<std::uint8_t>((vpi << 4) | ((vci >> 12) & 0xf));
  out[2] = static_cast<std::uint8_t>(vci >> 4);
  out[3] = static_cast<std::uint8_t>((vci << 4) | ((pti & 0x7) << 1) |
                                     (clp ? 1 : 0));
  out[4] = compute_hec(out);
}

std::optional<CellHeader> CellHeader::parse(util::ByteView bytes) noexcept {
  if (bytes.size() < kCellHeaderLen) return std::nullopt;
  if (compute_hec(bytes.data()) != bytes[4]) return std::nullopt;
  CellHeader h;
  h.gfc = static_cast<std::uint8_t>(bytes[0] >> 4);
  h.vpi = static_cast<std::uint8_t>((bytes[0] << 4) | (bytes[1] >> 4));
  h.vci = static_cast<std::uint16_t>(((bytes[1] & 0xf) << 12) |
                                     (bytes[2] << 4) | (bytes[3] >> 4));
  h.pti = static_cast<std::uint8_t>((bytes[3] >> 1) & 0x7);
  h.clp = (bytes[3] & 0x1) != 0;
  return h;
}

util::Bytes Cell::to_bytes() const {
  util::Bytes out(kCellLen);
  header.write(out.data());
  std::copy(payload.begin(), payload.end(), out.begin() + kCellHeaderLen);
  return out;
}

std::optional<Cell> Cell::from_bytes(util::ByteView bytes) noexcept {
  if (bytes.size() < kCellLen) return std::nullopt;
  const auto header = CellHeader::parse(bytes);
  if (!header) return std::nullopt;
  Cell c;
  c.header = *header;
  std::copy_n(bytes.begin() + kCellHeaderLen, kCellPayload,
              c.payload.begin());
  return c;
}

std::vector<Cell> segment_pdu(const CpcsPdu& pdu, std::uint8_t vpi,
                              std::uint16_t vci) {
  std::vector<Cell> cells;
  const std::size_t n = pdu.num_cells();
  cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Cell c;
    c.header.vpi = vpi;
    c.header.vci = vci;
    c.header.set_end_of_message(i + 1 == n);
    const auto src = pdu.cell(i);
    std::copy(src.begin(), src.end(), c.payload.begin());
    cells.push_back(c);
  }
  return cells;
}

}  // namespace cksum::atm
