// Trace-lab throughput (docs/TRACE.md): how fast a capture moves from
// raw pcap bytes to the PDU model.
//
//   BM_PcapParse     structural parse + record classification, MB/s of
//                    capture bytes
//   BM_TraceIngest   full ingest: header checks, transport-checksum
//                    validation, SimPacket construction (packets/sec)
//   BM_DataProfile   the data-profile analyzer over payload bytes
//
// The capture is synthesised in memory with util::PcapWriter over a
// seeded flow, so numbers are hermetic and comparable run to run.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/experiments.hpp"
#include "fsgen/generator.hpp"
#include "net/flow.hpp"
#include "trace/ingest.hpp"
#include "trace/pcap_reader.hpp"
#include "trace/profile.hpp"
#include "util/pcap.hpp"

namespace {

using namespace cksum;

/// A deterministic ~1 MiB capture: four seeded 256 KiB transfers, one
/// flow restart each, LINKTYPE_RAW.
const util::Bytes& capture_bytes() {
  static const util::Bytes cap = [] {
    const net::FlowConfig flow = core::paper_flow_config();
    std::ostringstream os;
    util::PcapWriter w(os, util::PcapLink::kRaw);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const util::Bytes file = fsgen::generate_file(
          fsgen::FileKind::kGmonProfile, seed, 256 * 1024);
      for (const auto& p : net::segment_file(flow, util::ByteView(file)))
        w.write_packet(p.ip_bytes());
    }
    const std::string s = os.str();
    return util::Bytes(s.begin(), s.end());
  }();
  return cap;
}

void BM_PcapParse(benchmark::State& state) {
  const util::Bytes& cap = capture_bytes();
  std::string err;
  for (auto _ : state) {
    auto r = trace::PcapReader::parse(cap, &err);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cap.size()));
}
BENCHMARK(BM_PcapParse);

void BM_TraceIngest(benchmark::State& state) {
  std::string err;
  const auto r = trace::PcapReader::parse(capture_bytes(), &err);
  trace::IngestConfig cfg;
  cfg.flow = core::paper_flow_config();
  std::uint64_t accepted = 0;
  for (auto _ : state) {
    const trace::IngestResult res = trace::ingest_capture(*r, cfg);
    accepted = res.counts.accepted;
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(accepted));
}
BENCHMARK(BM_TraceIngest);

void BM_DataProfile(benchmark::State& state) {
  const util::Bytes payload =
      fsgen::generate_file(fsgen::FileKind::kGmonProfile, 3, 256 * 1024);
  for (auto _ : state) {
    trace::DataProfile prof;
    prof.add_payload(util::ByteView(payload));
    benchmark::DoNotOptimize(prof.bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_DataProfile);

}  // namespace

BENCHMARK_MAIN();
